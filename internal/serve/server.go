package serve

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"buspower/internal/cluster"
	"buspower/internal/jobs"
	"buspower/internal/workload"
)

// Options configures a Server. The zero value is not usable; call
// DefaultOptions and override.
type Options struct {
	// Addr is the listen address, e.g. ":8080".
	Addr string
	// Workers bounds concurrently executing evaluations (<= 0 means
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker before new ones are
	// shed with 429.
	QueueDepth int
	// RequestTimeout bounds one evaluation (queue wait included via the
	// request context); <= 0 disables the timeout.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds the /v1/eval request body.
	MaxBodyBytes int64
	// DrainTimeout bounds graceful shutdown.
	DrainTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// QuietAccessLog demotes successful per-request log lines to debug
	// level; failures (4xx/5xx) still log at info.
	QuietAccessLog bool
	// Logger receives structured request and lifecycle logs; nil discards
	// them.
	Logger *slog.Logger

	// JobsDir roots the async job journal; completed job results survive
	// restarts there. Empty keeps the job engine memory-only (jobs work,
	// but nothing survives the process).
	JobsDir string
	// JobWorkers bounds the dedicated job worker pool (<= 0 means half of
	// GOMAXPROCS) — deliberately separate from Workers so batch backlogs
	// and interactive /v1/eval traffic cannot starve each other.
	JobWorkers int
	// JobQueueDepth bounds queued job items before submissions are shed
	// with 429 (<= 0 means 4× the per-job item cap).
	JobQueueDepth int

	// Topology makes this server one replica of a sharded cache group: a
	// static consistent-hash ring routes each canonical request key to an
	// owner, and non-owners fetch the owner's cached answer instead of
	// recomputing. Nil (the default) serves single-replica exactly as
	// before. Ring failures only ever degrade to local computation.
	Topology *cluster.Topology
	// PeerTimeout bounds one peer fetch (<= 0 means 2s).
	PeerTimeout time.Duration
	// PeerMaxBodyBytes bounds an accepted peer payload (<= 0 means 32 MiB).
	PeerMaxBodyBytes int64
	// ResponseCacheEntries bounds the marshalled-response LRU
	// (<= 0 means 4096).
	ResponseCacheEntries int
}

// DefaultOptions returns the production defaults.
func DefaultOptions() Options {
	return Options{
		Addr:           ":8080",
		Workers:        runtime.GOMAXPROCS(0),
		QueueDepth:     64,
		RequestTimeout: 30 * time.Second,
		MaxBodyBytes:   8 << 20,
		DrainTimeout:   30 * time.Second,
	}
}

// Server is the buspower evaluation service.
type Server struct {
	opts      Options
	pool      *pool
	jobs      *jobs.Engine
	metrics   *metrics
	respCache *respCache
	cluster   *serveCluster // nil outside cluster mode
	log       *slog.Logger
	mux       *http.ServeMux
	draining  atomic.Bool
	// drainCh closes when shutdown begins, ending long-lived SSE streams
	// so they cannot hold the HTTP drain open for their whole job.
	drainCh chan struct{}
}

// NewServer builds a Server; fields of opts left zero fall back to
// DefaultOptions.
func NewServer(opts Options) *Server {
	def := DefaultOptions()
	if opts.Addr == "" {
		opts.Addr = def.Addr
	}
	if opts.Workers <= 0 {
		opts.Workers = def.Workers
	}
	if opts.QueueDepth < 0 {
		opts.QueueDepth = 0
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = def.MaxBodyBytes
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = def.DrainTimeout
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	// The job store follows the trace-cache discipline for an unusable
	// directory: degrade to memory-only with a warning instead of failing
	// the whole server (corrupt journal tails are already recovered
	// inside Open and never reach this path).
	store, err := jobs.Open(opts.JobsDir)
	if err != nil {
		log.Error("job journal disabled, jobs will not survive restarts", "dir", opts.JobsDir, "err", err)
		store, _ = jobs.Open("")
	}
	s := &Server{
		opts:      opts,
		pool:      newPool(opts.Workers, opts.QueueDepth),
		jobs:      jobs.NewEngine(store, opts.JobWorkers, opts.JobQueueDepth),
		metrics:   newMetrics([]string{"eval", "schemes", "workloads", "healthz", "metrics", "jobs", "job", "job_events", "peer_eval", "peer_trace"}),
		respCache: newRespCache(opts.ResponseCacheEntries),
		log:       log,
		mux:       http.NewServeMux(),
		drainCh:   make(chan struct{}),
	}
	if opts.Topology != nil {
		s.cluster = &serveCluster{
			topo:  opts.Topology,
			peers: cluster.NewPeerClient(opts.Topology.Self.ID, opts.PeerTimeout, opts.PeerMaxBodyBytes),
		}
		s.installPeerTraceFetcher()
		log.Info("cluster member",
			"self", opts.Topology.Self.ID,
			"nodes", len(opts.Topology.Ring.Nodes()),
			"vnodes", opts.Topology.Ring.VNodes(),
			"replication", opts.Topology.Ring.ReplicationFactor())
	}
	s.jobs.Start()
	s.mux.Handle("/v1/eval", s.instrument("eval", s.handleEval))
	s.mux.Handle("POST /v1/peer/eval", s.instrument("peer_eval", s.handlePeerEval))
	s.mux.Handle("GET /v1/peer/trace/{key}", s.instrument("peer_trace", s.handlePeerTrace))
	s.mux.Handle("/v1/schemes", s.instrument("schemes", s.handleSchemes))
	s.mux.Handle("/v1/workloads", s.instrument("workloads", s.handleWorkloads))
	s.mux.Handle("POST /v1/jobs", s.instrument("jobs", s.handleJobSubmit))
	s.mux.Handle("GET /v1/jobs", s.instrument("jobs", s.handleJobList))
	s.mux.Handle("GET /v1/jobs/{id}", s.instrument("job", s.handleJobGet))
	s.mux.Handle("DELETE /v1/jobs/{id}", s.instrument("job", s.handleJobCancel))
	s.mux.Handle("GET /v1/jobs/{id}/events", s.instrument("job_events", s.handleJobEvents))
	s.mux.Handle("/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.Handle("/metrics", s.instrument("metrics", s.handleMetrics))
	if opts.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the server's routing tree (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe runs the server until ctx is cancelled, then drains:
// /healthz flips to 503 so load balancers stop routing here, the
// listener closes, and in-flight requests get up to DrainTimeout to
// finish before the server exits. Returns nil on a clean drain.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is ListenAndServe on an existing listener (the listener is
// closed on shutdown).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return context.Background() },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	s.log.Info("serving", "addr", ln.Addr().String(), "workers", s.opts.Workers, "queue", s.opts.QueueDepth)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	close(s.drainCh) // end SSE streams so they can't hold the drain open
	s.removePeerTraceFetcher()
	s.log.Info("draining", "timeout", s.opts.DrainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		// The drain window expired with requests still running; cut them,
		// but still checkpoint the job engine — its journal is what lets
		// the next process resume the interrupted work.
		hs.Close()
		s.drainJobs(drainCtx)
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		s.drainJobs(drainCtx)
		return err
	}
	if err := s.drainJobs(drainCtx); err != nil {
		return err
	}
	s.log.Info("drained")
	return nil
}

// drainJobs stops the job engine within what remains of the drain
// budget: running items finish (or are cancelled at the deadline and
// resume after restart), then the journal compacts and closes.
func (s *Server) drainJobs(ctx context.Context) error {
	err := s.jobs.Drain(ctx)
	if err != nil {
		s.log.Error("job engine drain", "err", err)
		return err
	}
	s.log.Info("job engine drained")
	return nil
}

// Close releases the server's background resources (the job worker pool
// and its journal) without serving; for embedding and tests that drive
// the Handler directly.
func (s *Server) Close() error {
	s.removePeerTraceFetcher()
	ctx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
	defer cancel()
	return s.jobs.Drain(ctx)
}

// removePeerTraceFetcher detaches this server from the process-global
// workload hook so a drained cluster member stops issuing peer fetches.
func (s *Server) removePeerTraceFetcher() {
	if s.cluster != nil {
		workload.SetPeerTraceFetcher(nil)
	}
}
