package stats

import "sort"

// FrequencyCDF computes the cumulative distribution of the most frequent
// unique values in a trace, reproducing the statistic of the paper's
// Figure 7: point i of the result is the fraction of all trace entries
// covered by the i+1 most frequent unique values.
//
// The returned slice is non-decreasing and ends at 1 for non-empty input;
// it is empty for empty input.
func FrequencyCDF(trace []uint64) []float64 {
	if len(trace) == 0 {
		return nil
	}
	counts := make(map[uint64]int, 1024)
	for _, v := range trace {
		counts[v]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	cdf := make([]float64, len(freqs))
	total := float64(len(trace))
	running := 0
	for i, c := range freqs {
		running += c
		cdf[i] = float64(running) / total
	}
	return cdf
}

// CoverageAt returns the fraction of trace entries covered by the n most
// frequent unique values (1.0 if n exceeds the number of unique values, 0
// for empty traces or n <= 0).
func CoverageAt(cdf []float64, n int) float64 {
	if len(cdf) == 0 || n <= 0 {
		return 0
	}
	if n > len(cdf) {
		n = len(cdf)
	}
	return cdf[n-1]
}

// WindowUniqueFraction computes the statistic of the paper's Figure 8: the
// average, over all length-window windows of the trace, of the fraction of
// values within the window that are unique (appear exactly once in that
// window). Windows slide by one position. A window size of 1 always yields
// 1. It returns 0 when the trace is shorter than the window.
func WindowUniqueFraction(trace []uint64, window int) float64 {
	return NewWindowUniqueProfile(trace).Fraction(window)
}

// WindowUniqueProfile answers WindowUniqueFraction queries for any window
// size from one hashing pass over the trace. Position i is unique in the
// window starting at j iff its previous occurrence of the same value lies
// before j and its next occurrence lies at or beyond j+window, so its
// contribution to the sum over all windows is the length of an interval of
// valid j — arithmetic on the (window-independent) prev/next occurrence
// arrays, with no per-window dictionary maintenance.
type WindowUniqueProfile struct {
	n          int
	prev, next []int32
}

// NewWindowUniqueProfile indexes the trace's previous/next occurrence
// structure. Traces are bounded well below 2^31 values (the trace reader
// rejects counts over 2^30), which keeps the occurrence links in int32.
func NewWindowUniqueProfile(trace []uint64) *WindowUniqueProfile {
	n := len(trace)
	p := &WindowUniqueProfile{
		n:    n,
		prev: make([]int32, n),
		next: make([]int32, n),
	}
	last := make(map[uint64]int32, 1024)
	for i, v := range trace {
		if j, ok := last[v]; ok {
			p.prev[i] = j
			p.next[j] = int32(i)
		} else {
			p.prev[i] = -1
		}
		p.next[i] = int32(n)
		last[v] = int32(i)
	}
	return p
}

// Fraction returns the average unique fraction for one window size. The
// accumulated sum is an integer (every window contributes a whole count),
// exactly representable in float64 for any realistic trace, so the result
// is bit-identical to the sliding-dictionary formulation it replaced.
func (p *WindowUniqueProfile) Fraction(window int) float64 {
	if window <= 0 || p.n < window {
		return 0
	}
	last := p.n - window
	var sum uint64
	for i := 0; i < p.n; i++ {
		lo := i - window + 1
		if lo < 0 {
			lo = 0
		}
		if pv := int(p.prev[i]) + 1; pv > lo {
			lo = pv
		}
		hi := i
		if nx := int(p.next[i]) - window; nx < hi {
			hi = nx
		}
		if last < hi {
			hi = last
		}
		if hi >= lo {
			sum += uint64(hi - lo + 1)
		}
	}
	return float64(sum) / float64(last+1) / float64(window)
}

// UniqueCount returns the number of distinct values in the trace.
func UniqueCount(trace []uint64) int {
	seen := make(map[uint64]struct{}, 1024)
	for _, v := range trace {
		seen[v] = struct{}{}
	}
	return len(seen)
}
