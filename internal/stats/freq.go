package stats

import "sort"

// FrequencyCDF computes the cumulative distribution of the most frequent
// unique values in a trace, reproducing the statistic of the paper's
// Figure 7: point i of the result is the fraction of all trace entries
// covered by the i+1 most frequent unique values.
//
// The returned slice is non-decreasing and ends at 1 for non-empty input;
// it is empty for empty input.
func FrequencyCDF(trace []uint64) []float64 {
	if len(trace) == 0 {
		return nil
	}
	counts := make(map[uint64]int, 1024)
	for _, v := range trace {
		counts[v]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	cdf := make([]float64, len(freqs))
	total := float64(len(trace))
	running := 0
	for i, c := range freqs {
		running += c
		cdf[i] = float64(running) / total
	}
	return cdf
}

// CoverageAt returns the fraction of trace entries covered by the n most
// frequent unique values (1.0 if n exceeds the number of unique values, 0
// for empty traces or n <= 0).
func CoverageAt(cdf []float64, n int) float64 {
	if len(cdf) == 0 || n <= 0 {
		return 0
	}
	if n > len(cdf) {
		n = len(cdf)
	}
	return cdf[n-1]
}

// WindowUniqueFraction computes the statistic of the paper's Figure 8: the
// average, over all length-window windows of the trace, of the fraction of
// values within the window that are unique (appear exactly once in that
// window). Windows slide by one position. A window size of 1 always yields
// 1. It returns 0 when the trace is shorter than the window.
func WindowUniqueFraction(trace []uint64, window int) float64 {
	if window <= 0 || len(trace) < window {
		return 0
	}
	counts := make(map[uint64]int, window*2)
	unique := 0 // number of values with count exactly 1 in current window
	add := func(v uint64) {
		c := counts[v]
		counts[v] = c + 1
		switch c {
		case 0:
			unique++
		case 1:
			unique--
		}
	}
	remove := func(v uint64) {
		c := counts[v]
		switch c {
		case 1:
			delete(counts, v)
			unique--
		case 2:
			counts[v] = 1
			unique++
		default:
			counts[v] = c - 1
		}
	}
	for i := 0; i < window; i++ {
		add(trace[i])
	}
	sum := float64(unique)
	n := 1
	for i := window; i < len(trace); i++ {
		remove(trace[i-window])
		add(trace[i])
		sum += float64(unique)
		n++
	}
	return sum / float64(n) / float64(window)
}

// UniqueCount returns the number of distinct values in the trace.
func UniqueCount(trace []uint64) int {
	seen := make(map[uint64]struct{}, 1024)
	for _, v := range trace {
		seen[v] = struct{}{}
	}
	return len(seen)
}
