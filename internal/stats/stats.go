// Package stats provides the small statistical toolkit used throughout the
// reproduction: order statistics (median, percentiles), empirical CDFs over
// value frequencies, window-uniqueness measurement, streaming moments, and
// a deterministic PRNG so every experiment is a pure function of its
// parameters.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Median returns the median of xs (mean of the two middle elements for even
// lengths). It panics on an empty slice. The input is not modified.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. It panics on an empty slice or a
// p outside [0, 100]. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: invalid percentile %v", p))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs; it panics on an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Online accumulates count, mean and variance in one pass (Welford).
// The zero value is ready to use.
type Online struct {
	n    uint64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	o.n++
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() uint64 { return o.n }

// Mean returns the running mean (0 if empty).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the population variance (0 for fewer than 2 samples).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// RNG is a deterministic SplitMix64 pseudo-random generator. Unlike
// math/rand it is trivially seedable and stable across Go releases, which
// keeps experiment outputs reproducible byte-for-byte.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *RNG) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a pseudo-random int in [0, n); it panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
