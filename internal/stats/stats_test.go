package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1}, 1},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.xs); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {12.5, 15},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentilePanics(t *testing.T) {
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { Percentile(nil, 50) })
	mustPanic(func() { Percentile([]float64{1}, -1) })
	mustPanic(func() { Percentile([]float64{1}, 101) })
	mustPanic(func() { Mean(nil) })
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestOnline(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Errorf("N = %d, want 8", o.N())
	}
	if math.Abs(o.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", o.Mean())
	}
	if math.Abs(o.Variance()-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", o.Variance())
	}
	if math.Abs(o.StdDev()-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", o.StdDev())
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 {
		t.Error("empty Online should report zeros")
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(100)
	same := true
	a2 := NewRNG(99)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(3)
	var buckets [10]int
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, b := range buckets {
		if math.Abs(float64(b)-n/10) > n/100 {
			t.Errorf("bucket %d badly skewed: %d", i, b)
		}
	}
}

func TestFrequencyCDF(t *testing.T) {
	trace := []uint64{7, 7, 7, 7, 3, 3, 5, 9} // freqs 4,2,1,1
	cdf := FrequencyCDF(trace)
	want := []float64{0.5, 0.75, 0.875, 1.0}
	if len(cdf) != len(want) {
		t.Fatalf("len = %d, want %d", len(cdf), len(want))
	}
	for i := range want {
		if math.Abs(cdf[i]-want[i]) > 1e-12 {
			t.Errorf("cdf[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
}

func TestFrequencyCDFEmpty(t *testing.T) {
	if cdf := FrequencyCDF(nil); cdf != nil {
		t.Errorf("expected nil CDF for empty trace, got %v", cdf)
	}
}

func TestFrequencyCDFProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		trace := make([]uint64, len(raw))
		for i, b := range raw {
			trace[i] = uint64(b % 16)
		}
		cdf := FrequencyCDF(trace)
		if len(cdf) == 0 || math.Abs(cdf[len(cdf)-1]-1) > 1e-9 {
			return false
		}
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoverageAt(t *testing.T) {
	cdf := []float64{0.5, 0.75, 1.0}
	if CoverageAt(cdf, 1) != 0.5 {
		t.Error("CoverageAt(1)")
	}
	if CoverageAt(cdf, 3) != 1.0 {
		t.Error("CoverageAt(3)")
	}
	if CoverageAt(cdf, 10) != 1.0 {
		t.Error("CoverageAt beyond should clamp")
	}
	if CoverageAt(cdf, 0) != 0 || CoverageAt(nil, 1) != 0 {
		t.Error("CoverageAt edge cases")
	}
}

func TestWindowUniqueFraction(t *testing.T) {
	// All identical: only 1 unique value occupying every slot -> for window
	// w, unique count is 0 (value appears w times, not once) unless w == 1.
	same := []uint64{5, 5, 5, 5, 5, 5}
	if got := WindowUniqueFraction(same, 3); got != 0 {
		t.Errorf("identical trace window 3: got %v, want 0", got)
	}
	if got := WindowUniqueFraction(same, 1); got != 1 {
		t.Errorf("window 1 must always be 1, got %v", got)
	}
	// All distinct: every value in every window is unique.
	distinct := []uint64{1, 2, 3, 4, 5, 6}
	if got := WindowUniqueFraction(distinct, 4); got != 1 {
		t.Errorf("distinct trace: got %v, want 1", got)
	}
	// Mixed: trace {1,1,2}, window 2: windows {1,1}->0/2, {1,2}->2/2; avg 0.5.
	mixed := []uint64{1, 1, 2}
	if got := WindowUniqueFraction(mixed, 2); got != 0.5 {
		t.Errorf("mixed trace: got %v, want 0.5", got)
	}
}

func TestWindowUniqueFractionEdges(t *testing.T) {
	if WindowUniqueFraction([]uint64{1, 2}, 3) != 0 {
		t.Error("window larger than trace should yield 0")
	}
	if WindowUniqueFraction([]uint64{1, 2}, 0) != 0 {
		t.Error("window 0 should yield 0")
	}
}

func TestWindowUniqueFractionSliding(t *testing.T) {
	// Brute-force check on a small random-ish trace.
	trace := []uint64{1, 2, 1, 3, 3, 2, 1, 4, 4, 4, 2, 1}
	for window := 1; window <= len(trace); window++ {
		brute := 0.0
		n := 0
		for start := 0; start+window <= len(trace); start++ {
			counts := map[uint64]int{}
			for _, v := range trace[start : start+window] {
				counts[v]++
			}
			u := 0
			for _, c := range counts {
				if c == 1 {
					u++
				}
			}
			brute += float64(u) / float64(window)
			n++
		}
		brute /= float64(n)
		if got := WindowUniqueFraction(trace, window); math.Abs(got-brute) > 1e-12 {
			t.Errorf("window %d: got %v, want %v", window, got, brute)
		}
	}
}

func TestUniqueCount(t *testing.T) {
	if got := UniqueCount([]uint64{1, 2, 2, 3, 3, 3}); got != 3 {
		t.Errorf("UniqueCount = %d, want 3", got)
	}
	if got := UniqueCount(nil); got != 0 {
		t.Errorf("UniqueCount(nil) = %d, want 0", got)
	}
}
