package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
)

// BUSTRC02 is the bulk-I/O container format behind the persistent trace
// cache: one file holds every bus stream of a workload run plus an opaque
// metadata blob (the run's summary statistics), so a cache hit restores a
// whole TraceSet in a few large reads instead of one file (and one
// per-value loop) per bus.
//
// Layout (all integers little-endian):
//
//	magic[8] "BUSTRC02"
//	nameLen u16 | name bytes
//	metaLen u32 | meta bytes (opaque to this package)
//	sectionCount u16
//	per section: nameLen u16 | name | width u16 | count u64
//	per section: count * 8 bytes of values (64 KiB block-encoded)
//	checksum u64 (FNV-1a over everything after the magic)
//
// The trailing checksum makes torn or bit-rotted cache files detectable:
// readers verify it before trusting the payload, and the cache layer
// falls back to re-simulation on any error.

// containerMagic identifies the container format and its version; bumping
// the version changes the magic, so stale files fail the magic check.
var containerMagic = [8]byte{'B', 'U', 'S', 'T', 'R', 'C', '0', '2'}

// ContainerVersion names the on-disk format for cache-key derivation:
// changing the layout must change this string (and the magic), which
// invalidates every previously written cache entry.
const ContainerVersion = "BUSTRC02"

// Limits keep a corrupted header from driving huge allocations.
const (
	maxContainerSections = 64
	maxContainerMeta     = 1 << 20
	maxContainerValues   = 1 << 30
)

// Section is one bus stream inside a Container.
type Section struct {
	// Name identifies the bus, e.g. "reg".
	Name string
	// Width is the bus width in bits (1..64).
	Width int
	// Values is the per-beat value stream.
	Values []uint64
}

// Container is a named bundle of bus streams with an opaque metadata blob.
type Container struct {
	// Name identifies the source, e.g. the workload name.
	Name string
	// Meta is carried verbatim; the cache layer stores the run summary
	// here as JSON.
	Meta []byte
	// Sections are the bus streams in file order.
	Sections []Section
}

// blockWords is the bulk-I/O chunk size: 8192 values = 64 KiB per Write
// or ReadFull call instead of one call per 8-byte value.
const blockWords = 8192

// writeUint64Block encodes vals in blockWords chunks through buf (which
// must hold blockWords*8 bytes).
func writeUint64Block(w io.Writer, vals []uint64, buf []byte) error {
	for len(vals) > 0 {
		n := len(vals)
		if n > blockWords {
			n = blockWords
		}
		for i, v := range vals[:n] {
			binary.LittleEndian.PutUint64(buf[i*8:], v)
		}
		if _, err := w.Write(buf[:n*8]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// readUint64Block decodes len(vals) values in blockWords chunks through
// buf (which must hold blockWords*8 bytes).
func readUint64Block(r io.Reader, vals []uint64, buf []byte) error {
	for len(vals) > 0 {
		n := len(vals)
		if n > blockWords {
			n = blockWords
		}
		if _, err := io.ReadFull(r, buf[:n*8]); err != nil {
			return err
		}
		for i := range vals[:n] {
			vals[i] = binary.LittleEndian.Uint64(buf[i*8:])
		}
		vals = vals[n:]
	}
	return nil
}

// readUint64Progressive decodes count values, growing the result one block
// at a time so a corrupt header announcing an absurd count costs only the
// bytes actually present in the stream, not an upfront 8*count allocation.
func readUint64Progressive(r io.Reader, count uint64, buf []byte) ([]uint64, error) {
	capHint := count
	if capHint > blockWords {
		capHint = blockWords
	}
	vals := make([]uint64, 0, capHint)
	for uint64(len(vals)) < count {
		n := count - uint64(len(vals))
		if n > blockWords {
			n = blockWords
		}
		if _, err := io.ReadFull(r, buf[:n*8]); err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			vals = append(vals, binary.LittleEndian.Uint64(buf[i*8:]))
		}
	}
	return vals, nil
}

// Write serializes the container with its trailing checksum.
func (c *Container) Write(w io.Writer) error {
	if len(c.Name) > 0xFFFF {
		return errors.New("trace: container name too long")
	}
	if len(c.Meta) > maxContainerMeta {
		return fmt.Errorf("trace: container meta of %d bytes exceeds limit", len(c.Meta))
	}
	if len(c.Sections) > maxContainerSections {
		return fmt.Errorf("trace: %d sections exceed limit %d", len(c.Sections), maxContainerSections)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(containerMagic[:]); err != nil {
		return err
	}
	sum := fnv.New64a()
	hw := io.MultiWriter(bw, sum) // checksum covers everything after the magic

	var u16 [2]byte
	var u32 [4]byte
	var u64 [8]byte
	putString := func(s string) error {
		binary.LittleEndian.PutUint16(u16[:], uint16(len(s)))
		if _, err := hw.Write(u16[:]); err != nil {
			return err
		}
		_, err := io.WriteString(hw, s)
		return err
	}
	if err := putString(c.Name); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(len(c.Meta)))
	if _, err := hw.Write(u32[:]); err != nil {
		return err
	}
	if _, err := hw.Write(c.Meta); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(u16[:], uint16(len(c.Sections)))
	if _, err := hw.Write(u16[:]); err != nil {
		return err
	}
	for _, s := range c.Sections {
		if len(s.Name) > 0xFFFF {
			return errors.New("trace: section name too long")
		}
		if s.Width < 1 || s.Width > 64 {
			return fmt.Errorf("trace: section %s: invalid width %d", s.Name, s.Width)
		}
		if len(s.Values) > maxContainerValues {
			return fmt.Errorf("trace: section %s: %d values exceed limit", s.Name, len(s.Values))
		}
		if err := putString(s.Name); err != nil {
			return err
		}
		binary.LittleEndian.PutUint16(u16[:], uint16(s.Width))
		if _, err := hw.Write(u16[:]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(u64[:], uint64(len(s.Values)))
		if _, err := hw.Write(u64[:]); err != nil {
			return err
		}
	}
	buf := make([]byte, blockWords*8)
	for _, s := range c.Sections {
		if err := writeUint64Block(hw, s.Values, buf); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint64(u64[:], sum.Sum64())
	if _, err := bw.Write(u64[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// ErrContainerFormat wraps every structural decode failure: bad magic,
// implausible header fields, truncation, checksum mismatch. Callers
// (the disk cache) treat any such error as "re-simulate".
var ErrContainerFormat = errors.New("trace: bad container")

func containerErrf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrContainerFormat, fmt.Sprintf(format, args...))
}

// checksumReader hashes everything read through it so the decoder can
// verify the trailing checksum without buffering the file.
type checksumReader struct {
	r   io.Reader
	sum hash.Hash64
}

func (cr *checksumReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.sum.Write(p[:n])
	}
	return n, err
}

// ReadContainer deserializes a container written by Write, verifying the
// checksum. Any structural problem — wrong magic (e.g. a stale-version
// file), truncation, corruption — yields an error wrapping
// ErrContainerFormat and never a panic.
func ReadContainer(r io.Reader) (*Container, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, containerErrf("reading magic: %v", err)
	}
	if m != containerMagic {
		return nil, containerErrf("magic %q is not %q (stale or foreign file)", m[:], containerMagic[:])
	}
	cr := &checksumReader{r: br, sum: fnv.New64a()}

	var u16 [2]byte
	var u32 [4]byte
	var u64 [8]byte
	readString := func(what string, limit int) (string, error) {
		if _, err := io.ReadFull(cr, u16[:]); err != nil {
			return "", containerErrf("%s length: %v", what, err)
		}
		n := int(binary.LittleEndian.Uint16(u16[:]))
		if n > limit {
			return "", containerErrf("%s length %d exceeds limit %d", what, n, limit)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(cr, b); err != nil {
			return "", containerErrf("%s: %v", what, err)
		}
		return string(b), nil
	}
	c := &Container{}
	var err error
	if c.Name, err = readString("container name", 0xFFFF); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(cr, u32[:]); err != nil {
		return nil, containerErrf("meta length: %v", err)
	}
	metaLen := binary.LittleEndian.Uint32(u32[:])
	if metaLen > maxContainerMeta {
		return nil, containerErrf("meta of %d bytes exceeds limit", metaLen)
	}
	c.Meta = make([]byte, metaLen)
	if _, err := io.ReadFull(cr, c.Meta); err != nil {
		return nil, containerErrf("meta: %v", err)
	}
	if _, err := io.ReadFull(cr, u16[:]); err != nil {
		return nil, containerErrf("section count: %v", err)
	}
	nSections := int(binary.LittleEndian.Uint16(u16[:]))
	if nSections > maxContainerSections {
		return nil, containerErrf("%d sections exceed limit %d", nSections, maxContainerSections)
	}
	c.Sections = make([]Section, nSections)
	counts := make([]uint64, nSections)
	var total uint64
	for i := range c.Sections {
		s := &c.Sections[i]
		if s.Name, err = readString("section name", 0xFFFF); err != nil {
			return nil, err
		}
		if _, err := io.ReadFull(cr, u16[:]); err != nil {
			return nil, containerErrf("section %s width: %v", s.Name, err)
		}
		s.Width = int(binary.LittleEndian.Uint16(u16[:]))
		if s.Width < 1 || s.Width > 64 {
			return nil, containerErrf("section %s: invalid width %d", s.Name, s.Width)
		}
		if _, err := io.ReadFull(cr, u64[:]); err != nil {
			return nil, containerErrf("section %s count: %v", s.Name, err)
		}
		counts[i] = binary.LittleEndian.Uint64(u64[:])
		if counts[i] > maxContainerValues || total+counts[i] > maxContainerValues {
			return nil, containerErrf("section %s: implausible value count %d", s.Name, counts[i])
		}
		total += counts[i]
	}
	buf := make([]byte, blockWords*8)
	for i := range c.Sections {
		if c.Sections[i].Values, err = readUint64Progressive(cr, counts[i], buf); err != nil {
			return nil, containerErrf("section %s values: %v", c.Sections[i].Name, err)
		}
	}
	want := cr.sum.Sum64()
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return nil, containerErrf("checksum: %v", err)
	}
	if got := binary.LittleEndian.Uint64(u64[:]); got != want {
		return nil, containerErrf("checksum mismatch: file %#x, computed %#x", got, want)
	}
	return c, nil
}

// SectionByName returns the named section.
func (c *Container) SectionByName(name string) (*Section, bool) {
	for i := range c.Sections {
		if c.Sections[i].Name == name {
			return &c.Sections[i], true
		}
	}
	return nil, false
}
