package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"buspower/internal/stats"
)

func randomContainer(seed uint64) *Container {
	rng := stats.NewRNG(seed)
	c := &Container{
		Name: "wl-" + string(rune('a'+seed%26)),
		Meta: []byte(`{"instructions":123}`),
	}
	nSections := 1 + int(rng.Uint32()%4)
	for s := 0; s < nSections; s++ {
		n := int(rng.Uint32() % 20000)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64()
		}
		c.Sections = append(c.Sections, Section{
			Name:   []string{"reg", "mem", "addr", "extra"}[s],
			Width:  1 + int(rng.Uint32()%64),
			Values: vals,
		})
	}
	return c
}

// Round-trip property: Write then ReadContainer reproduces every field for
// a spread of random sizes, including sections straddling the 64 KiB block
// boundary and empty sections.
func TestContainerRoundTripProperty(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		orig := randomContainer(seed)
		var buf bytes.Buffer
		if err := orig.Write(&buf); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		got, err := ReadContainer(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: read: %v", seed, err)
		}
		if got.Name != orig.Name || !bytes.Equal(got.Meta, orig.Meta) {
			t.Fatalf("seed %d: header mismatch: %+v", seed, got)
		}
		if len(got.Sections) != len(orig.Sections) {
			t.Fatalf("seed %d: %d sections, want %d", seed, len(got.Sections), len(orig.Sections))
		}
		for i, s := range orig.Sections {
			g := got.Sections[i]
			if g.Name != s.Name || g.Width != s.Width || len(g.Values) != len(s.Values) {
				t.Fatalf("seed %d section %d: shape mismatch", seed, i)
			}
			for j := range s.Values {
				if g.Values[j] != s.Values[j] {
					t.Fatalf("seed %d section %d value %d differs", seed, i, j)
				}
			}
		}
	}
}

func TestContainerRoundTripBlockBoundary(t *testing.T) {
	// Exactly the block size, one less, one more.
	for _, n := range []int{blockWords - 1, blockWords, blockWords + 1, 0} {
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(i) * 0x9E3779B97F4A7C15
		}
		c := &Container{Name: "b", Sections: []Section{{Name: "reg", Width: 32, Values: vals}}}
		var buf bytes.Buffer
		if err := c.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadContainer(&buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, v := range vals {
			if got.Sections[0].Values[i] != v {
				t.Fatalf("n=%d: value %d differs", n, i)
			}
		}
	}
}

// Every truncation point of a valid file must produce a clean
// ErrContainerFormat, never a panic or a silently short result.
func TestContainerTruncation(t *testing.T) {
	c := randomContainer(7)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	step := len(data)/97 + 1 // sample cut points across the whole file
	for cut := 0; cut < len(data); cut += step {
		if _, err := ReadContainer(bytes.NewReader(data[:cut])); !errors.Is(err, ErrContainerFormat) {
			t.Fatalf("cut at %d/%d: error %v does not wrap ErrContainerFormat", cut, len(data), err)
		}
	}
}

func TestContainerBadMagicAndStaleVersion(t *testing.T) {
	c := &Container{Name: "x", Sections: []Section{{Name: "reg", Width: 32, Values: []uint64{1, 2}}}}
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// A previous-version magic (BUSTRC01) must be rejected as stale.
	stale := append([]byte{}, data...)
	copy(stale, "BUSTRC01")
	if _, err := ReadContainer(bytes.NewReader(stale)); !errors.Is(err, ErrContainerFormat) {
		t.Errorf("stale-version magic accepted: %v", err)
	}
	// Arbitrary garbage.
	if _, err := ReadContainer(bytes.NewReader([]byte("hello world, not a trace"))); !errors.Is(err, ErrContainerFormat) {
		t.Error("garbage accepted")
	}
}

func TestContainerChecksumDetectsCorruption(t *testing.T) {
	c := randomContainer(3)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one payload bit somewhere after the header.
	data[len(data)/2] ^= 0x10
	if _, err := ReadContainer(bytes.NewReader(data)); !errors.Is(err, ErrContainerFormat) {
		t.Errorf("bit flip not detected: %v", err)
	}
}

func TestContainerRejectsOversizedFields(t *testing.T) {
	// Hand-craft a header announcing an absurd section count: the decoder
	// must bail before allocating.
	var buf bytes.Buffer
	buf.Write(containerMagic[:])
	var u16 [2]byte
	buf.Write(u16[:]) // name len 0
	var u32 [4]byte
	buf.Write(u32[:]) // meta len 0
	binary.LittleEndian.PutUint16(u16[:], 0xFFFF)
	buf.Write(u16[:]) // section count 65535
	if _, err := ReadContainer(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrContainerFormat) {
		t.Errorf("oversized section count accepted: %v", err)
	}
}

func TestSectionByName(t *testing.T) {
	c := randomContainer(2)
	if s, ok := c.SectionByName("reg"); !ok || s.Name != "reg" {
		t.Error("reg section not found")
	}
	if _, ok := c.SectionByName("nope"); ok {
		t.Error("phantom section found")
	}
}

// The BUSTRC01 block-I/O conversion must keep the byte stream identical to
// the original per-value encoding.
func TestTraceWriteBytesUnchangedByBlockIO(t *testing.T) {
	tr := &Trace{Name: "gcc/reg", Width: 32, Values: make([]uint64, blockWords+13)}
	rng := stats.NewRNG(99)
	for i := range tr.Values {
		tr.Values[i] = rng.Uint64()
	}
	var got bytes.Buffer
	if err := tr.Write(&got); err != nil {
		t.Fatal(err)
	}
	// Reference encoding: the BUSTRC01 layout written one value at a time.
	var want bytes.Buffer
	want.Write(magic[:])
	var u16 [2]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(tr.Name)))
	want.Write(u16[:])
	want.WriteString(tr.Name)
	binary.LittleEndian.PutUint16(u16[:], uint16(tr.Width))
	want.Write(u16[:])
	binary.LittleEndian.PutUint64(u64[:], uint64(len(tr.Values)))
	want.Write(u64[:])
	for _, v := range tr.Values {
		binary.LittleEndian.PutUint64(u64[:], v)
		want.Write(u64[:])
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("block-encoded BUSTRC01 bytes differ from the per-value encoding")
	}
}

// FuzzReadContainer feeds arbitrary bytes to the decoder: it must always
// return (possibly an error) without panicking, and anything it accepts
// must re-encode to a container that round-trips.
func FuzzReadContainer(f *testing.F) {
	c := &Container{
		Name: "seed",
		Meta: []byte(`{"i":1}`),
		Sections: []Section{
			{Name: "reg", Width: 32, Values: []uint64{1, 2, 3}},
			{Name: "mem", Width: 64, Values: []uint64{0xFFFFFFFFFFFFFFFF}},
		},
	}
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("BUSTRC02"))
	f.Add([]byte("BUSTRC01 old format"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadContainer(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("accepted container failed to re-encode: %v", err)
		}
		if _, err := ReadContainer(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-encoded container failed to decode: %v", err)
		}
	})
}
