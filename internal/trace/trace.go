// Package trace provides storage and statistics for bus value traces: a
// compact binary serialization (for cmd/tracegen and cmd/transcode) and
// the trace-characterization statistics of the paper's §4.2 (unique-value
// CDF of Figure 7, window-uniqueness of Figure 8).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"buspower/internal/stats"
)

// magic identifies the trace file format ("BUSTRC01").
var magic = [8]byte{'B', 'U', 'S', 'T', 'R', 'C', '0', '1'}

// Trace is a captured bus value stream.
type Trace struct {
	// Name identifies the source, e.g. "gcc/reg".
	Name string
	// Width is the data bus width in bits.
	Width int
	// Values is the per-beat value stream.
	Values []uint64
}

// Write serializes the trace:
//
//	magic[8] | nameLen u16 | name | width u16 | count u64 | values u64...
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if len(t.Name) > 0xFFFF {
		return errors.New("trace: name too long")
	}
	if t.Width < 1 || t.Width > 64 {
		return fmt.Errorf("trace: invalid width %d", t.Width)
	}
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(t.Name)))
	if _, err := bw.Write(u16[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(u16[:], uint16(t.Width))
	if _, err := bw.Write(u16[:]); err != nil {
		return err
	}
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(len(t.Values)))
	if _, err := bw.Write(u64[:]); err != nil {
		return err
	}
	// Bulk block encoding: the on-disk bytes are identical to the old
	// one-value-at-a-time loop (a plain concatenation of LE uint64s), but
	// written in 64 KiB chunks.
	if err := writeUint64Block(bw, t.Values, make([]byte, blockWords*8)); err != nil {
		return err
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("trace: bad magic (not a trace file)")
	}
	var u16 [2]byte
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return nil, err
	}
	name := make([]byte, binary.LittleEndian.Uint16(u16[:]))
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return nil, err
	}
	width := int(binary.LittleEndian.Uint16(u16[:]))
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("trace: invalid width %d", width)
	}
	var u64 [8]byte
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint64(u64[:])
	const maxCount = 1 << 30
	if count > maxCount {
		return nil, fmt.Errorf("trace: implausible value count %d", count)
	}
	values := make([]uint64, count)
	if err := readUint64Block(br, values, make([]byte, blockWords*8)); err != nil {
		return nil, fmt.Errorf("trace: truncated values: %w", err)
	}
	return &Trace{Name: string(name), Width: width, Values: values}, nil
}

// Characteristics bundles the §4.2 statistics of a trace.
type Characteristics struct {
	// Values is the trace length.
	Values int
	// Unique is the number of distinct values.
	Unique int
	// CDF is the cumulative coverage of values sorted most-frequent-first
	// (Figure 7). CDF[i] is the coverage of the i+1 hottest values.
	CDF []float64
	// WindowUnique maps window size to the average fraction of unique
	// values per window (Figure 8).
	WindowUnique map[int]float64
}

// Characterize computes the §4.2 statistics, evaluating window-uniqueness
// at the given window sizes.
func Characterize(values []uint64, windows []int) Characteristics {
	c := Characteristics{
		Values:       len(values),
		Unique:       stats.UniqueCount(values),
		CDF:          stats.FrequencyCDF(values),
		WindowUnique: make(map[int]float64, len(windows)),
	}
	prof := stats.NewWindowUniqueProfile(values)
	for _, w := range windows {
		c.WindowUnique[w] = prof.Fraction(w)
	}
	return c
}

// CoverageAt returns the fraction of the trace covered by the n most
// frequent values.
func (c Characteristics) CoverageAt(n int) float64 {
	return stats.CoverageAt(c.CDF, n)
}
