package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	orig := &Trace{Name: "gcc/reg", Width: 32, Values: []uint64{1, 2, 3, 0xFFFFFFFF, 0}}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Width != orig.Width || len(got.Values) != len(orig.Values) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range orig.Values {
		if got.Values[i] != orig.Values[i] {
			t.Fatalf("value %d: %d != %d", i, got.Values[i], orig.Values[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	orig := &Trace{Name: "", Width: 8, Values: nil}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != 0 {
		t.Error("expected empty values")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a trace file at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	orig := &Trace{Name: "x", Width: 16, Values: []uint64{1, 2, 3, 4}}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestWriteRejectsInvalidWidth(t *testing.T) {
	bad := &Trace{Name: "x", Width: 0, Values: nil}
	if err := bad.Write(&bytes.Buffer{}); err == nil {
		t.Error("width 0 accepted")
	}
	bad.Width = 65
	if err := bad.Write(&bytes.Buffer{}); err == nil {
		t.Error("width 65 accepted")
	}
}

func TestCharacterize(t *testing.T) {
	values := []uint64{5, 5, 5, 5, 7, 7, 9, 11}
	c := Characterize(values, []int{1, 2, 4})
	if c.Values != 8 || c.Unique != 4 {
		t.Errorf("values=%d unique=%d", c.Values, c.Unique)
	}
	if got := c.CoverageAt(1); got != 0.5 {
		t.Errorf("CoverageAt(1) = %v", got)
	}
	if got := c.CoverageAt(4); got != 1.0 {
		t.Errorf("CoverageAt(4) = %v", got)
	}
	if c.WindowUnique[1] != 1 {
		t.Error("window 1 should be fully unique")
	}
	if c.WindowUnique[4] >= 1 {
		t.Error("window 4 over repeated values should be below 1")
	}
}
