package wire

import (
	"fmt"
	"math"
	"sort"
)

// Interpolate synthesizes a technology descriptor for an intermediate
// feature size by log-linear interpolation between the anchored nodes —
// the paper's §6 asks how transcoding scales as "Moore's law marches
// forward", and this lets the crossover analysis sweep feature size as a
// continuous axis. Requested sizes must lie within [70, 130] nm; the
// anchored nodes return their exact published parameters.
func Interpolate(featureNM int) (Technology, error) {
	techs := Technologies()
	sort.Slice(techs, func(i, j int) bool { return techs[i].FeatureNM > techs[j].FeatureNM })
	if featureNM > techs[0].FeatureNM || featureNM < techs[len(techs)-1].FeatureNM {
		return Technology{}, fmt.Errorf("wire: feature size %dnm outside the anchored range [%d, %d]",
			featureNM, techs[len(techs)-1].FeatureNM, techs[0].FeatureNM)
	}
	for _, t := range techs {
		if t.FeatureNM == featureNM {
			return t, nil
		}
	}
	// Find the bracketing anchors.
	var hi, lo Technology
	for i := 0; i+1 < len(techs); i++ {
		if techs[i].FeatureNM > featureNM && featureNM > techs[i+1].FeatureNM {
			hi, lo = techs[i], techs[i+1]
			break
		}
	}
	// Interpolate log-linearly in feature size (process parameters scale
	// multiplicatively between nodes).
	f := (math.Log(float64(hi.FeatureNM)) - math.Log(float64(featureNM))) /
		(math.Log(float64(hi.FeatureNM)) - math.Log(float64(lo.FeatureNM)))
	lerp := func(a, b float64) float64 { return a * math.Pow(b/a, f) }
	t := Technology{
		Name:                    fmt.Sprintf("%.2fum", float64(featureNM)/1000),
		FeatureNM:               featureNM,
		Vdd:                     lerp(hi.Vdd, lo.Vdd),
		CapSubstrate:            lerp(hi.CapSubstrate, lo.CapSubstrate),
		CapCoupling:             lerp(hi.CapCoupling, lo.CapCoupling),
		CapRepeater:             lerp(hi.CapRepeater, lo.CapRepeater),
		RepeaterPitchMM:         lerp(hi.RepeaterPitchMM, lo.RepeaterPitchMM),
		RepeaterSizeX:           lerp(hi.RepeaterSizeX, lo.RepeaterSizeX),
		BufferedDelayPSPerMM:    lerp(hi.BufferedDelayPSPerMM, lo.BufferedDelayPSPerMM),
		CascadeDelayPS:          lerp(hi.CascadeDelayPS, lo.CascadeDelayPS),
		UnbufferedDelayPSPerMM2: lerp(hi.UnbufferedDelayPSPerMM2, lo.UnbufferedDelayPSPerMM2),
		CycleTimeNS:             lerp(hi.CycleTimeNS, lo.CycleTimeNS),
	}
	return t, nil
}
