package wire

import (
	"math"
	"testing"
)

func TestInterpolateAnchorsExact(t *testing.T) {
	for _, anchor := range Technologies() {
		got, err := Interpolate(anchor.FeatureNM)
		if err != nil {
			t.Fatal(err)
		}
		if got != anchor {
			t.Errorf("%dnm: interpolation did not return the anchor exactly", anchor.FeatureNM)
		}
	}
}

func TestInterpolateMonotone(t *testing.T) {
	// Vdd, capacitances and cycle time must vary monotonically across the
	// swept range (each bracket is monotone; check a fine sweep).
	prevVdd := math.Inf(1)
	for nm := 130; nm >= 70; nm -= 5 {
		tech, err := Interpolate(nm)
		if err != nil {
			t.Fatal(err)
		}
		if tech.Vdd > prevVdd+1e-12 {
			t.Errorf("%dnm: Vdd %v not non-increasing", nm, tech.Vdd)
		}
		prevVdd = tech.Vdd
		if tech.FeatureNM != nm {
			t.Errorf("feature size not preserved: %d", tech.FeatureNM)
		}
		// The derived quantities must stay physical.
		if tech.EffectiveLambda(Buffered) <= 0 || tech.EnergyPerTransitionPJ(Buffered, 10) <= 0 {
			t.Errorf("%dnm: non-physical derived values", nm)
		}
	}
}

func TestInterpolateBetweenNodes(t *testing.T) {
	mid, err := Interpolate(115)
	if err != nil {
		t.Fatal(err)
	}
	if !(mid.Vdd < Tech130.Vdd && mid.Vdd > Tech100.Vdd) {
		t.Errorf("115nm Vdd %v not between anchors", mid.Vdd)
	}
	if !(mid.CapCoupling > Tech130.CapCoupling && mid.CapCoupling < Tech100.CapCoupling) {
		t.Errorf("115nm coupling cap %v not between anchors", mid.CapCoupling)
	}
	if mid.Name != "0.12um" {
		t.Errorf("name = %q", mid.Name)
	}
}

func TestInterpolateRange(t *testing.T) {
	if _, err := Interpolate(140); err == nil {
		t.Error("140nm accepted")
	}
	if _, err := Interpolate(65); err == nil {
		t.Error("65nm accepted")
	}
}
