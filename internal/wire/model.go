package wire

import "math"

// Kind selects between the bare wire and the uniformly repeated wire of
// the paper's Figure 4.
type Kind int

const (
	// Unbuffered is a bare distributed-RC wire (quadratic delay).
	Unbuffered Kind = iota
	// Buffered is a uniformly repeated wire behind a driver cascade
	// (linear delay, higher capacitance).
	Buffered
)

// String returns the paper's label for the wire kind.
func (k Kind) String() string {
	if k == Buffered {
		return "With repeaters"
	}
	return "Unbuffered wire"
}

// EffectiveLambda returns the effective Λ = C_I / C_S ratio of Table 1:
// the repeaters' input and junction capacitance adds to the
// wire-to-substrate term, so buffered wires see a far smaller Λ.
func (t Technology) EffectiveLambda(k Kind) float64 {
	return t.CapCoupling / t.selfCapPerMM(k)
}

// selfCapPerMM is the wire's capacitance to ground per mm, including the
// amortized repeater loading for buffered wires.
func (t Technology) selfCapPerMM(k Kind) float64 {
	c := t.CapSubstrate
	if k == Buffered {
		c += t.CapRepeater
	}
	return c
}

// EnergyPerTransitionPJ returns the energy in pJ expended by a single
// charge or discharge of one wire of the given length (mm) against its
// self capacitance only (E = ½·C_S·V²). Coupling energy is accounted
// separately via the Λ-weighted coupling event count.
func (t Technology) EnergyPerTransitionPJ(k Kind, lengthMM float64) float64 {
	return 0.5 * t.selfCapPerMM(k) * lengthMM * t.Vdd * t.Vdd
}

// EnergyPerCouplingEventPJ returns the energy in pJ of one coupling event
// (one unit of ψ_n, i.e. the coupling capacitor to one neighbour swinging
// by Vdd) for a wire pair of the given length.
func (t Technology) EnergyPerCouplingEventPJ(lengthMM float64) float64 {
	return 0.5 * t.CapCoupling * lengthMM * t.Vdd * t.Vdd
}

// SingleTransitionEnergyPJ returns the total energy of one wire of the
// given length toggling once while both neighbours stay quiet — the
// quantity plotted in the paper's Figure 5. It equals the self-capacitance
// energy plus two coupling events:
//
//	E = ½·C_self·L·V² · (1 + 2Λ_eff)
func (t Technology) SingleTransitionEnergyPJ(k Kind, lengthMM float64) float64 {
	return t.EnergyPerTransitionPJ(k, lengthMM) + 2*t.EnergyPerCouplingEventPJ(lengthMM)
}

// TraceEnergyPJ returns the wire energy in pJ of a bus trace whose
// Λ-weighted activity was measured by a bus meter: transitions is Σλ_n,
// couplings is Σψ_n (equation 1 of the paper, with the proportionality
// constant made explicit).
func (t Technology) TraceEnergyPJ(k Kind, lengthMM float64, transitions, couplings uint64) float64 {
	return t.EnergyPerTransitionPJ(k, lengthMM)*float64(transitions) +
		t.EnergyPerCouplingEventPJ(lengthMM)*float64(couplings)
}

// WeightedCostEnergyPJ converts a Λ-weighted activity cost
// (Σλ + Λ_eff·Σψ, as produced by bus.Meter.Cost with this technology's
// effective Λ) into pJ for the given wire kind and length.
func (t Technology) WeightedCostEnergyPJ(k Kind, lengthMM, cost float64) float64 {
	return t.EnergyPerTransitionPJ(k, lengthMM) * cost
}

// RepeaterCount returns the number of uniformly spaced repeaters inserted
// along a buffered wire of the given length (at least one for any positive
// length, per the paper's repeated-line model).
func (t Technology) RepeaterCount(lengthMM float64) int {
	if lengthMM <= 0 {
		return 0
	}
	n := int(math.Round(lengthMM / t.RepeaterPitchMM))
	if n < 1 {
		n = 1
	}
	return n
}

// DelayPS returns the propagation delay in ps of a wire of the given
// length: linear for the repeated line (after the fixed driver-cascade
// delay), quadratic in length for the bare distributed-RC wire.
func (t Technology) DelayPS(k Kind, lengthMM float64) float64 {
	if lengthMM <= 0 {
		return 0
	}
	if k == Buffered {
		return t.CascadeDelayPS + t.BufferedDelayPSPerMM*lengthMM
	}
	return t.UnbufferedDelayPSPerMM2 * lengthMM * lengthMM
}

// Point is one sample of a length sweep.
type Point struct {
	LengthMM float64
	Value    float64
}

// EnergyCurve samples SingleTransitionEnergyPJ over [fromMM, toMM] with the
// given step, reproducing one series of the paper's Figure 5.
func (t Technology) EnergyCurve(k Kind, fromMM, toMM, stepMM float64) []Point {
	return sweep(fromMM, toMM, stepMM, func(l float64) float64 {
		return t.SingleTransitionEnergyPJ(k, l)
	})
}

// DelayCurve samples DelayPS over [fromMM, toMM] with the given step,
// reproducing one series of the paper's Figure 6.
func (t Technology) DelayCurve(k Kind, fromMM, toMM, stepMM float64) []Point {
	return sweep(fromMM, toMM, stepMM, func(l float64) float64 {
		return t.DelayPS(k, l)
	})
}

func sweep(from, to, step float64, f func(float64) float64) []Point {
	if step <= 0 || to < from {
		return nil
	}
	var pts []Point
	for l := from; l <= to+1e-9; l += step {
		pts = append(pts, Point{LengthMM: l, Value: f(l)})
	}
	return pts
}
