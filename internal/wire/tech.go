// Package wire models long on-chip interconnect for the three process
// technologies the paper studies (0.13µm, 0.10µm and 0.07µm): wire
// capacitance to substrate and to adjacent wires, Bakoglu-style uniform
// repeater insertion, and the resulting energy-per-transition and delay as
// functions of wire length.
//
// The paper derived these values from HSPICE runs over ST Micro 0.13µm
// models and the Berkeley Predictive Technology Model (BPTM); neither is
// available here, so this package substitutes a first-order analytic model
// whose constants are anchored to the paper's published measurements:
//
//   - Table 1 (effective Λ per technology, buffered and unbuffered),
//   - Figure 5 (wire energy vs length, all technologies in the 0–6 pJ band
//     at 30mm, buffered above unbuffered),
//   - Figure 6 (buffered delay linear in length, unbuffered quadratic),
//   - Table 2 (supply voltage and cycle time per technology).
//
// Downstream analyses (energy budget, crossover lengths) consume only the
// per-mm transition energy, the effective Λ, and the per-cycle transcoder
// energy, so anchoring these constants preserves the paper's break-even
// structure.
package wire

import "fmt"

// Technology describes one process node.
type Technology struct {
	// Name is the display name, e.g. "0.13um".
	Name string
	// FeatureNM is the minimum feature size in nanometres.
	FeatureNM int
	// Vdd is the supply voltage in volts (ITRS projection, Table 2).
	Vdd float64

	// CapSubstrate is the bare wire-to-substrate capacitance C_S in pF/mm
	// for a minimum-pitch intermediate-layer wire.
	CapSubstrate float64
	// CapCoupling is the inter-wire capacitance C_I in pF/mm to one
	// adjacent neighbour at minimum pitch.
	CapCoupling float64
	// CapRepeater is the capacitance added per mm by uniformly inserted
	// repeaters (input gate + drain junction), amortized over the line.
	CapRepeater float64

	// RepeaterPitchMM is the optimal spacing between repeaters in mm
	// (Bakoglu first-order optimum for the node).
	RepeaterPitchMM float64
	// RepeaterSizeX is the repeater width in multiples of a minimum-size
	// inverter (the paper reports 40–50x).
	RepeaterSizeX float64

	// BufferedDelayPSPerMM is the propagation delay of the repeated line
	// in ps/mm (linear regime).
	BufferedDelayPSPerMM float64
	// CascadeDelayPS is the fixed delay of the exponential driver cascade
	// at the sending end in ps.
	CascadeDelayPS float64
	// UnbufferedDelayPSPerMM2 is the coefficient of the quadratic
	// distributed-RC delay of the bare wire in ps/mm².
	UnbufferedDelayPSPerMM2 float64

	// CycleTimeNS is the bus clock period in ns (Table 2).
	CycleTimeNS float64
}

// Standard process nodes studied by the paper. Capacitance values are
// chosen so that the effective Λ of Table 1 and the energy band of Figure 5
// are reproduced; see the package comment.
var (
	// Tech130 models the ST Micro 0.13µm process of the paper's layout.
	Tech130 = Technology{
		Name:                    "0.13um",
		FeatureNM:               130,
		Vdd:                     1.2,
		CapSubstrate:            0.00521,
		CapCoupling:             0.0730,
		CapRepeater:             0.1038,
		RepeaterPitchMM:         3.0,
		RepeaterSizeX:           48,
		BufferedDelayPSPerMM:    62,
		CascadeDelayPS:          130,
		UnbufferedDelayPSPerMM2: 3.9,
		CycleTimeNS:             4.0,
	}
	// Tech100 models the BPTM 0.10µm projection.
	Tech100 = Technology{
		Name:                    "0.10um",
		FeatureNM:               100,
		Vdd:                     1.1,
		CapSubstrate:            0.00512,
		CapCoupling:             0.0850,
		CapRepeater:             0.1424,
		RepeaterPitchMM:         2.5,
		RepeaterSizeX:           45,
		BufferedDelayPSPerMM:    55,
		CascadeDelayPS:          110,
		UnbufferedDelayPSPerMM2: 4.4,
		CycleTimeNS:             3.2,
	}
	// Tech070 models the BPTM 0.07µm projection.
	Tech070 = Technology{
		Name:                    "0.07um",
		FeatureNM:               70,
		Vdd:                     0.9,
		CapSubstrate:            0.00897,
		CapCoupling:             0.1300,
		CapRepeater:             0.2110,
		RepeaterPitchMM:         2.0,
		RepeaterSizeX:           42,
		BufferedDelayPSPerMM:    48,
		CascadeDelayPS:          90,
		UnbufferedDelayPSPerMM2: 5.0,
		CycleTimeNS:             2.7,
	}
)

// Technologies lists the standard nodes in shrinking order.
func Technologies() []Technology {
	return []Technology{Tech130, Tech100, Tech070}
}

// ByName returns the standard technology with the given name.
func ByName(name string) (Technology, error) {
	for _, t := range Technologies() {
		if t.Name == name {
			return t, nil
		}
	}
	return Technology{}, fmt.Errorf("wire: unknown technology %q", name)
}
