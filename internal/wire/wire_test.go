package wire

import (
	"math"
	"testing"
)

// Table 1 of the paper gives the effective Λ the model must reproduce.
func TestEffectiveLambdaMatchesTable1(t *testing.T) {
	cases := []struct {
		tech       Technology
		kind       Kind
		wantLambda float64
	}{
		{Tech130, Unbuffered, 14.0},
		{Tech130, Buffered, 0.670},
		{Tech100, Unbuffered, 16.6},
		{Tech100, Buffered, 0.576},
		{Tech070, Unbuffered, 14.5},
		{Tech070, Buffered, 0.591},
	}
	for _, c := range cases {
		got := c.tech.EffectiveLambda(c.kind)
		if math.Abs(got-c.wantLambda)/c.wantLambda > 0.01 {
			t.Errorf("%s %s: Λ = %.4f, want %.3f (±1%%)", c.tech.Name, c.kind, got, c.wantLambda)
		}
	}
}

// Figure 5: all technologies' buffered 30mm single-transition energies lie
// in the paper's 0-6 pJ band, and buffered wires cost more than bare ones.
func TestSingleTransitionEnergyBand(t *testing.T) {
	for _, tech := range Technologies() {
		buf := tech.SingleTransitionEnergyPJ(Buffered, 30)
		raw := tech.SingleTransitionEnergyPJ(Unbuffered, 30)
		if buf < 3 || buf > 6 {
			t.Errorf("%s buffered 30mm energy %.2f pJ outside Figure 5 band [3, 6]", tech.Name, buf)
		}
		if raw >= buf {
			t.Errorf("%s: unbuffered energy %.2f >= buffered %.2f; repeaters must add energy", tech.Name, raw, buf)
		}
	}
}

func TestEnergyLinearInLength(t *testing.T) {
	for _, tech := range Technologies() {
		for _, k := range []Kind{Buffered, Unbuffered} {
			e10 := tech.SingleTransitionEnergyPJ(k, 10)
			e20 := tech.SingleTransitionEnergyPJ(k, 20)
			if math.Abs(e20-2*e10) > 1e-9 {
				t.Errorf("%s %s: energy not linear in length (%v vs 2*%v)", tech.Name, k, e20, e10)
			}
		}
	}
}

func TestDelayShapes(t *testing.T) {
	for _, tech := range Technologies() {
		// Buffered: linear. Subtracting the cascade, delay(20)/delay(10) == 2.
		d10 := tech.DelayPS(Buffered, 10) - tech.CascadeDelayPS
		d20 := tech.DelayPS(Buffered, 20) - tech.CascadeDelayPS
		if math.Abs(d20-2*d10) > 1e-9 {
			t.Errorf("%s: buffered delay not linear", tech.Name)
		}
		// Unbuffered: quadratic.
		u10 := tech.DelayPS(Unbuffered, 10)
		u20 := tech.DelayPS(Unbuffered, 20)
		if math.Abs(u20-4*u10) > 1e-9 {
			t.Errorf("%s: unbuffered delay not quadratic", tech.Name)
		}
	}
}

// Figure 6: beyond moderate lengths the bare wire is slower than the
// repeated wire — the reason repeaters exist.
func TestRepeatersWinAtLength(t *testing.T) {
	for _, tech := range Technologies() {
		if tech.DelayPS(Unbuffered, 30) <= tech.DelayPS(Buffered, 30) {
			t.Errorf("%s: unbuffered wire should be slower at 30mm", tech.Name)
		}
	}
}

func TestRepeaterCount(t *testing.T) {
	if got := Tech130.RepeaterCount(0); got != 0 {
		t.Errorf("zero-length wire should have no repeaters, got %d", got)
	}
	if got := Tech130.RepeaterCount(1); got != 1 {
		t.Errorf("short wire should still get one repeater, got %d", got)
	}
	if got := Tech130.RepeaterCount(30); got != 10 {
		t.Errorf("30mm at 3mm pitch should have 10 repeaters, got %d", got)
	}
	// Shrinking technology packs repeaters more densely.
	if Tech070.RepeaterCount(30) <= Tech130.RepeaterCount(30) {
		t.Error("smaller technology should need more repeaters for the same length")
	}
}

func TestTraceEnergyComposition(t *testing.T) {
	tech := Tech130
	const length = 10.0
	// 100 transitions and 50 coupling events must decompose linearly.
	got := tech.TraceEnergyPJ(Buffered, length, 100, 50)
	want := 100*tech.EnergyPerTransitionPJ(Buffered, length) +
		50*tech.EnergyPerCouplingEventPJ(length)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("TraceEnergyPJ = %v, want %v", got, want)
	}
}

func TestWeightedCostEnergyConsistency(t *testing.T) {
	// Energy computed from (transitions, couplings) must equal energy
	// computed from the Λ-weighted cost when using the effective Λ.
	tech := Tech100
	const length = 15.0
	lam := tech.EffectiveLambda(Buffered)
	transitions, couplings := uint64(1000), uint64(400)
	cost := float64(transitions) + lam*float64(couplings)
	a := tech.TraceEnergyPJ(Buffered, length, transitions, couplings)
	b := tech.WeightedCostEnergyPJ(Buffered, length, cost)
	if math.Abs(a-b)/a > 1e-12 {
		t.Errorf("inconsistent energy accounting: %v vs %v", a, b)
	}
}

func TestByName(t *testing.T) {
	tech, err := ByName("0.10um")
	if err != nil || tech.FeatureNM != 100 {
		t.Errorf("ByName(0.10um) = %v, %v", tech.Name, err)
	}
	if _, err := ByName("45nm"); err == nil {
		t.Error("ByName should reject unknown technologies")
	}
}

func TestCurves(t *testing.T) {
	pts := Tech130.EnergyCurve(Buffered, 5, 30, 5)
	if len(pts) != 6 {
		t.Fatalf("expected 6 points, got %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value <= pts[i-1].Value {
			t.Error("energy curve must increase with length")
		}
	}
	dts := Tech130.DelayCurve(Unbuffered, 5, 30, 5)
	for i := 1; i < len(dts); i++ {
		if dts[i].Value <= dts[i-1].Value {
			t.Error("delay curve must increase with length")
		}
	}
	if sweep(10, 5, 1, func(float64) float64 { return 0 }) != nil {
		t.Error("inverted sweep range should return nil")
	}
	if sweep(0, 5, 0, func(float64) float64 { return 0 }) != nil {
		t.Error("zero step should return nil")
	}
}

func TestVoltageAndCycleTimeMatchTable2(t *testing.T) {
	cases := []struct {
		tech  Technology
		vdd   float64
		cycle float64
	}{
		{Tech130, 1.2, 4.0},
		{Tech100, 1.1, 3.2},
		{Tech070, 0.9, 2.7},
	}
	for _, c := range cases {
		if c.tech.Vdd != c.vdd {
			t.Errorf("%s: Vdd = %v, want %v", c.tech.Name, c.tech.Vdd, c.vdd)
		}
		if c.tech.CycleTimeNS != c.cycle {
			t.Errorf("%s: cycle = %v, want %v", c.tech.Name, c.tech.CycleTimeNS, c.cycle)
		}
	}
}
