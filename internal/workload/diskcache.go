package workload

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"buspower/internal/cpu"
	"buspower/internal/trace"
)

// The persistent trace cache: trace extraction is deterministic in
// (program, cpu.Config, RunConfig), so its output is a reusable artifact.
// Each TraceSet is stored as one BUSTRC02 container in a
// content-addressed file — the name is a hash of everything the
// simulation depends on — which makes invalidation automatic: any change
// to the workload source, the core configuration, the run bounds, or the
// container format produces a different key, and stale files are simply
// never opened again. Corrupt or foreign files fail the container
// checksum/magic checks and fall back to re-simulation.

// traceCacheKeyVersion pins the key derivation itself. It incorporates the
// container format version, so a format bump invalidates every entry.
const traceCacheKeyVersion = trace.ContainerVersion + "/k1"

var (
	diskCacheMu  sync.RWMutex
	diskCacheDir string // "" = disabled
)

// SetTraceCacheDir enables the on-disk trace cache rooted at dir (created
// if missing), or disables it when dir is empty. Returns the previous
// directory.
func SetTraceCacheDir(dir string) (prev string, err error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", fmt.Errorf("workload: trace cache dir: %w", err)
		}
	}
	diskCacheMu.Lock()
	prev = diskCacheDir
	diskCacheDir = dir
	diskCacheMu.Unlock()
	return prev, nil
}

// TraceCacheDir returns the active on-disk cache directory ("" when the
// disk layer is disabled).
func TraceCacheDir() string {
	diskCacheMu.RLock()
	defer diskCacheMu.RUnlock()
	return diskCacheDir
}

// DefaultTraceCacheDir returns the conventional per-user cache location
// (os.UserCacheDir()/buspower/traces), or "" when no user cache dir is
// known.
func DefaultTraceCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "buspower", "traces")
}

// traceCacheKey derives the content address of one simulation: a hash of
// the key-derivation version, the workload's program text, the core
// configuration, and the run bounds. Every field is length-prefixed so
// concatenations cannot collide.
func traceCacheKey(w Workload, simCfg cpu.Config, cfg RunConfig) string {
	h := sha256.New()
	var n [8]byte
	put := func(parts ...string) {
		for _, p := range parts {
			binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
			h.Write(n[:])
			h.Write([]byte(p))
		}
	}
	put(traceCacheKeyVersion, w.Name, w.Source)
	put(fmt.Sprintf("%+v", simCfg))
	binary.LittleEndian.PutUint64(n[:], cfg.MaxInstructions)
	h.Write(n[:])
	binary.LittleEndian.PutUint64(n[:], uint64(cfg.MaxBusValues))
	h.Write(n[:])
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// traceCachePath is the file holding the TraceSet for key.
func traceCachePath(dir, key string) string {
	return filepath.Join(dir, key+".trc")
}

// busWidthBits is the recorded stream width: all three buses carry 32-bit
// beats (§4.1).
const busWidthBits = 32

// loadTraceSet reads a cached TraceSet. A fs.ErrNotExist error means a
// plain miss; any other error means the file exists but cannot be
// trusted (stale format, torn write, corruption) and the caller should
// re-simulate.
func loadTraceSet(path, name string) (TraceSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return TraceSet{}, err
	}
	defer f.Close()
	return decodeTraceSet(f, name)
}

// decodeTraceSet parses one BUSTRC container stream into a TraceSet,
// enforcing the container checksum (inside ReadContainer), the expected
// workload name and the section layout. It backs both the disk cache
// and the peer-fetch path — a transferred container passes exactly the
// checks a local file does before anything trusts it.
func decodeTraceSet(r io.Reader, name string) (TraceSet, error) {
	c, err := trace.ReadContainer(r)
	if err != nil {
		return TraceSet{}, err
	}
	if c.Name != name {
		return TraceSet{}, fmt.Errorf("workload: cache entry names %q, want %q", c.Name, name)
	}
	ts := TraceSet{Workload: name}
	if err := json.Unmarshal(c.Meta, &ts.Summary); err != nil {
		return TraceSet{}, fmt.Errorf("workload: cache summary: %w", err)
	}
	for _, want := range []struct {
		name string
		dst  *[]uint64
	}{{"reg", &ts.Reg}, {"mem", &ts.Mem}, {"addr", &ts.Addr}} {
		s, ok := c.SectionByName(want.name)
		if !ok {
			return TraceSet{}, fmt.Errorf("workload: cache entry missing %s section", want.name)
		}
		*want.dst = s.Values
	}
	if len(ts.Reg) == 0 {
		return TraceSet{}, errors.New("workload: cache entry has empty register trace")
	}
	// Re-point the summary's streams at the loaded sections so the
	// TraceSet is self-consistent, as Run produces it.
	ts.Summary.RegisterBus = ts.Reg
	ts.Summary.MemoryBus = ts.Mem
	ts.Summary.MemoryAddrBus = ts.Addr
	return ts, nil
}

// storeTraceSet writes the TraceSet to its content address atomically:
// the container goes to a temp file in the same directory and is renamed
// into place, so concurrent readers and writers (including other
// processes) only ever observe complete files.
func storeTraceSet(dir, key string, ts TraceSet) error {
	// The summary's stream copies are redundant with the sections; strip
	// them from the JSON blob rather than storing every value twice.
	summary := ts.Summary
	summary.RegisterBus = nil
	summary.MemoryBus = nil
	summary.MemoryAddrBus = nil
	meta, err := json.Marshal(summary)
	if err != nil {
		return err
	}
	c := &trace.Container{
		Name: ts.Workload,
		Meta: meta,
		Sections: []trace.Section{
			{Name: "reg", Width: busWidthBits, Values: ts.Reg},
			{Name: "mem", Width: busWidthBits, Values: ts.Mem},
			{Name: "addr", Width: busWidthBits, Values: ts.Addr},
		},
	}
	tmp, err := os.CreateTemp(dir, key+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := c.Write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), traceCachePath(dir, key))
}

// notExist reports whether err is a plain missing-file error.
func notExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// validCacheKey guards the peer-serving path: keys are the hex content
// addresses traceCacheKey derives, so anything else (path separators,
// traversal) is rejected before touching the filesystem.
func validCacheKey(key string) bool {
	if len(key) != 32 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ErrNoCacheEntry reports that the persistent cache holds no container
// for a key (disk layer disabled counts too).
var ErrNoCacheEntry = errors.New("workload: no cached trace container for key")

// CachedContainerBytes returns the raw BUSTRC container stored under
// the content address key, for the peer-fetch API to serve. The bytes
// go out verbatim — the container's trailing checksum and the
// transfer-level checksum both travel with them, and the fetching side
// re-verifies before storing. Returns ErrNoCacheEntry when the disk
// layer is off or holds no such key.
func CachedContainerBytes(key string) ([]byte, error) {
	if !validCacheKey(key) {
		return nil, fmt.Errorf("workload: malformed trace cache key %q", key)
	}
	dir := TraceCacheDir()
	if dir == "" {
		return nil, ErrNoCacheEntry
	}
	data, err := os.ReadFile(traceCachePath(dir, key))
	if err != nil {
		if notExist(err) {
			return nil, ErrNoCacheEntry
		}
		return nil, err
	}
	return data, nil
}

// storeContainerBytes writes an already-encoded container under its
// content address with the same atomic temp-and-rename discipline
// storeTraceSet uses, so concurrent readers only ever observe complete
// files. The caller has already validated the bytes by decoding them.
func storeContainerBytes(dir, key string, data []byte) error {
	tmp, err := os.CreateTemp(dir, key+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), traceCachePath(dir, key))
}

// decodeTraceSetBytes validates and decodes a peer-transferred
// container.
func decodeTraceSetBytes(data []byte, name string) (TraceSet, error) {
	return decodeTraceSet(bytes.NewReader(data), name)
}
