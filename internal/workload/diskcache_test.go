package workload

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"buspower/internal/cpu"
)

// withTraceCacheDir points the disk cache at a temp directory for the
// test's duration and resets all cache state around it. These tests
// mutate package-global cache configuration, so they must not run in
// parallel with each other.
func withTraceCacheDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	prev, err := SetTraceCacheDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ClearTraceCache()
	t.Cleanup(func() {
		SetTraceCacheDir(prev)
		ClearTraceCache()
	})
	return dir
}

func cacheFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.trc"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

var diskTestCfg = RunConfig{MaxInstructions: 60_000, MaxBusValues: 5_000}

func TestDiskCacheRoundTrip(t *testing.T) {
	dir := withTraceCacheDir(t)

	first, err := Traces("li", diskTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	s := Stats()
	if s.DiskHits != 0 || s.DiskMisses != 1 || s.DiskErrors != 0 {
		t.Fatalf("after cold run: %+v", s)
	}
	files := cacheFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("expected 1 cache file, found %v", files)
	}

	// Drop the in-memory layer; the second call must be served from disk
	// and reproduce the simulated TraceSet exactly, summary included.
	ClearTraceCache()
	second, err := Traces("li", diskTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	s = Stats()
	if s.DiskHits != 1 || s.DiskMisses != 0 || s.DiskErrors != 0 {
		t.Fatalf("after warm run: %+v", s)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("disk-loaded TraceSet differs from the simulated one")
	}
}

func TestDiskCacheCorruptFileFallsBack(t *testing.T) {
	dir := withTraceCacheDir(t)
	want, err := Traces("li", diskTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	path := cacheFiles(t, dir)[0]

	// Flip a payload bit: the checksum must reject the file and the
	// runner must silently re-simulate (and overwrite with a good copy).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ClearTraceCache()
	got, err := Traces("li", diskTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	s := Stats()
	if s.DiskErrors == 0 || s.DiskHits != 0 {
		t.Fatalf("corruption not detected: %+v", s)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("fallback re-simulation produced a different TraceSet")
	}

	// The bad file was repaired: a third cold pass hits disk again.
	ClearTraceCache()
	if _, err := Traces("li", diskTestCfg); err != nil {
		t.Fatal(err)
	}
	if s := Stats(); s.DiskHits != 1 {
		t.Fatalf("repaired entry not reused: %+v", s)
	}
}

func TestDiskCacheStaleVersionIgnored(t *testing.T) {
	dir := withTraceCacheDir(t)
	if _, err := Traces("li", diskTestCfg); err != nil {
		t.Fatal(err)
	}
	path := cacheFiles(t, dir)[0]

	// Simulate a file from an older format: BUSTRC01 magic with junk.
	if err := os.WriteFile(path, []byte("BUSTRC01 leftover from an old build"), 0o644); err != nil {
		t.Fatal(err)
	}
	ClearTraceCache()
	if _, err := Traces("li", diskTestCfg); err != nil {
		t.Fatal(err)
	}
	s := Stats()
	if s.DiskHits != 0 || s.DiskErrors == 0 {
		t.Fatalf("stale-version file not treated as invalid: %+v", s)
	}
}

func TestDiskCacheKeySensitivity(t *testing.T) {
	dir := withTraceCacheDir(t)
	if _, err := Traces("li", diskTestCfg); err != nil {
		t.Fatal(err)
	}
	// A different run bound is a different simulation: new file.
	other := diskTestCfg
	other.MaxInstructions += 1
	if _, err := Traces("li", other); err != nil {
		t.Fatal(err)
	}
	// A different workload too.
	if _, err := Traces("gcc", diskTestCfg); err != nil {
		t.Fatal(err)
	}
	if files := cacheFiles(t, dir); len(files) != 3 {
		t.Fatalf("expected 3 distinct cache files, found %d", len(files))
	}
}

func TestDiskCacheKeyCoversConfig(t *testing.T) {
	w, err := ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	base := traceCacheKey(w, cpu.DefaultConfig(), diskTestCfg)
	altCfg := cpu.DefaultConfig()
	altCfg.RUUSize *= 2
	if traceCacheKey(w, altCfg, diskTestCfg) == base {
		t.Error("cpu.Config change did not change the cache key")
	}
	altW := w
	altW.Source += "\n"
	if traceCacheKey(altW, cpu.DefaultConfig(), diskTestCfg) == base {
		t.Error("program text change did not change the cache key")
	}
}

func TestDiskCacheDisabledByDefault(t *testing.T) {
	// With no directory configured, Traces must not touch the disk
	// counters at all.
	prev, err := SetTraceCacheDir("")
	if err != nil {
		t.Fatal(err)
	}
	ClearTraceCache()
	t.Cleanup(func() {
		SetTraceCacheDir(prev)
		ClearTraceCache()
	})
	if _, err := Traces("li", diskTestCfg); err != nil {
		t.Fatal(err)
	}
	s := Stats()
	if s.DiskHits != 0 || s.DiskMisses != 0 || s.DiskErrors != 0 {
		t.Fatalf("disk layer active while disabled: %+v", s)
	}
}
