package workload

import (
	"fmt"
	"sync"
	"sync/atomic"

	"buspower/internal/cpu"
)

// TraceSet is the bus traffic extracted from one workload run.
type TraceSet struct {
	// Workload names the benchmark.
	Workload string
	// Reg is the integer register-file output port value stream.
	Reg []uint64
	// Mem is the memory data bus value stream.
	Mem []uint64
	// Addr is the memory address bus stream (one address per Mem beat).
	Addr []uint64
	// Summary carries the timing model's run statistics.
	Summary cpu.BusTraces
}

// RunConfig bounds a trace-collection run.
type RunConfig struct {
	// MaxInstructions caps the simulated dynamic instruction count.
	MaxInstructions uint64
	// MaxBusValues caps each captured bus trace length (0 = unlimited).
	MaxBusValues int
}

// DefaultRunConfig is what the experiments use: enough instructions for
// trace statistics to stabilize while keeping full-suite sweeps fast.
func DefaultRunConfig() RunConfig {
	return RunConfig{MaxInstructions: 1_500_000, MaxBusValues: 120_000}
}

// Run executes the workload under the out-of-order timing model and
// captures its bus traffic.
func Run(w Workload, cfg RunConfig) (TraceSet, error) {
	p, err := w.Program()
	if err != nil {
		return TraceSet{}, err
	}
	sim, err := cpu.NewSimulator(p, cpu.DefaultConfig())
	if err != nil {
		return TraceSet{}, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	tr := sim.Run(cfg.MaxInstructions, cfg.MaxBusValues)
	if len(tr.RegisterBus) == 0 {
		return TraceSet{}, fmt.Errorf("workload %s: produced no register bus traffic", w.Name)
	}
	return TraceSet{Workload: w.Name, Reg: tr.RegisterBus, Mem: tr.MemoryBus, Addr: tr.MemoryAddrBus, Summary: tr}, nil
}

type cacheKey struct {
	name string
	cfg  RunConfig
}

// cacheEntry is one single-flight cache slot: the first caller to claim a
// key simulates and closes ready; everyone else blocks on ready and reads
// the stored result.
type cacheEntry struct {
	ready chan struct{}
	ts    TraceSet
	err   error
}

var (
	cacheMu     sync.Mutex
	traceCache  = map[cacheKey]*cacheEntry{}
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	diskHits    atomic.Uint64
	diskMisses  atomic.Uint64
	diskErrors  atomic.Uint64
	peerHits    atomic.Uint64
	peerMisses  atomic.Uint64
	peerErrors  atomic.Uint64

	peerFetchMu sync.RWMutex
	peerFetch   func(key string) ([]byte, bool)
)

// SetPeerTraceFetcher installs (or, with nil, removes) the cluster
// peer-fetch hook: on a disk-cache miss, simulate calls f with the
// entry's content address before falling back to re-simulation. f
// returns the owner replica's raw BUSTRC container bytes and true, or
// false when the key is locally owned, the owner has no copy, or the
// fetch failed — every false degrades to exactly the pre-cluster
// behavior. The transferred bytes pass the full container checksum and
// name validation before anything trusts them.
func SetPeerTraceFetcher(f func(key string) ([]byte, bool)) {
	peerFetchMu.Lock()
	peerFetch = f
	peerFetchMu.Unlock()
}

func peerTraceFetcher() func(key string) ([]byte, bool) {
	peerFetchMu.RLock()
	defer peerFetchMu.RUnlock()
	return peerFetch
}

// Traces returns the workload's bus traces, memoized per (workload,
// config) so the many figure sweeps sharing a trace do not re-simulate.
//
// The cache is single-flight and safe for concurrent use: when N callers
// ask for the same (workload, config) at once, exactly one runs the
// simulation while the rest block until its result (or error — errors are
// deterministic here, so they are cached too) is ready. All callers share
// the same backing arrays; traces must be treated as read-only.
func Traces(name string, cfg RunConfig) (TraceSet, error) {
	key := cacheKey{name, cfg}
	cacheMu.Lock()
	e, ok := traceCache[key]
	if ok {
		cacheMu.Unlock()
		cacheHits.Add(1)
		<-e.ready
		return e.ts, e.err
	}
	e = &cacheEntry{ready: make(chan struct{})}
	traceCache[key] = e
	cacheMu.Unlock()
	cacheMisses.Add(1)
	e.ts, e.err = simulate(name, cfg)
	close(e.ready)
	return e.ts, e.err
}

// simulate produces a TraceSet, consulting the persistent disk cache when
// one is configured. It runs inside the single-flight leader, so for any
// (workload, config) at most one goroutine touches the disk entry at a
// time within this process; cross-process safety comes from the cache's
// atomic rename-on-write.
func simulate(name string, cfg RunConfig) (TraceSet, error) {
	w, err := ByName(name)
	if err != nil {
		return TraceSet{}, err
	}
	dir := TraceCacheDir()
	fetch := peerTraceFetcher()
	if dir == "" && fetch == nil {
		return Run(w, cfg)
	}
	key := traceCacheKey(w, cpu.DefaultConfig(), cfg)
	if dir != "" {
		ts, lerr := loadTraceSet(traceCachePath(dir, key), name)
		if lerr == nil {
			diskHits.Add(1)
			return ts, nil
		}
		diskMisses.Add(1)
		if !notExist(lerr) {
			// The file exists but is stale, torn, or corrupt: fall back to
			// re-simulation (which will overwrite it with a good copy).
			diskErrors.Add(1)
		}
	}
	// Before paying for a simulation, ask the ring owner for its cached
	// container. The transferred bytes pass the same checksum, name and
	// section validation a local file does; a good copy is persisted
	// locally (atomic rename) so the next process restart is disk-warm.
	if fetch != nil {
		if data, ok := fetch(key); ok {
			ts, perr := decodeTraceSetBytes(data, name)
			if perr == nil {
				peerHits.Add(1)
				if dir != "" {
					if serr := storeContainerBytes(dir, key, data); serr != nil {
						diskErrors.Add(1)
					}
				}
				return ts, nil
			}
			// The peer sent bytes we cannot trust: recompute locally.
			peerErrors.Add(1)
		} else {
			peerMisses.Add(1)
		}
	}
	ts, err := Run(w, cfg)
	if err == nil && dir != "" {
		if serr := storeTraceSet(dir, key, ts); serr != nil {
			diskErrors.Add(1)
		}
	}
	return ts, err
}

// TraceCacheStats reports the in-memory cache's counters: hits counts
// calls served from a memoized or in-flight simulation, misses counts
// simulations actually started. After any burst of concurrent Traces
// calls for one key, misses increases by exactly 1.
func TraceCacheStats() (hits, misses uint64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// CacheStats is a full accounting of both trace cache layers.
type CacheStats struct {
	// MemHits and MemMisses count the in-process memoization layer
	// (same meaning as TraceCacheStats).
	MemHits, MemMisses uint64
	// DiskHits and DiskMisses count persistent-cache lookups; they stay
	// zero while no cache directory is configured. Every memory miss
	// becomes exactly one disk hit or miss when the disk layer is on.
	DiskHits, DiskMisses uint64
	// DiskErrors counts cache files that existed but could not be
	// trusted (stale format, corruption) plus failed writes; each such
	// event fell back to re-simulation, never to a wrong answer.
	DiskErrors uint64
	// PeerHits counts containers fetched from the ring owner instead of
	// re-simulated; PeerMisses counts fetch attempts the owner could not
	// serve (locally owned keys, owner cold, owner down); PeerErrors
	// counts transferred containers that failed validation. All stay
	// zero outside cluster mode.
	PeerHits, PeerMisses, PeerErrors uint64
}

// Stats reports both cache layers' counters.
func Stats() CacheStats {
	return CacheStats{
		MemHits:    cacheHits.Load(),
		MemMisses:  cacheMisses.Load(),
		DiskHits:   diskHits.Load(),
		DiskMisses: diskMisses.Load(),
		DiskErrors: diskErrors.Load(),
		PeerHits:   peerHits.Load(),
		PeerMisses: peerMisses.Load(),
		PeerErrors: peerErrors.Load(),
	}
}

// ClearTraceCache drops all memoized traces and resets every counter,
// including the disk layer's (for tests and tools that sweep many
// configurations). On-disk cache files are kept — they are content
// addressed, so they stay valid across runs. In-flight simulations
// complete and are delivered to their waiters, but their results are no
// longer cached for later callers.
func ClearTraceCache() {
	cacheMu.Lock()
	traceCache = map[cacheKey]*cacheEntry{}
	cacheMu.Unlock()
	cacheHits.Store(0)
	cacheMisses.Store(0)
	diskHits.Store(0)
	diskMisses.Store(0)
	diskErrors.Store(0)
	peerHits.Store(0)
	peerMisses.Store(0)
	peerErrors.Store(0)
}
