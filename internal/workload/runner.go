package workload

import (
	"fmt"
	"sync"

	"buspower/internal/cpu"
)

// TraceSet is the bus traffic extracted from one workload run.
type TraceSet struct {
	// Workload names the benchmark.
	Workload string
	// Reg is the integer register-file output port value stream.
	Reg []uint64
	// Mem is the memory data bus value stream.
	Mem []uint64
	// Addr is the memory address bus stream (one address per Mem beat).
	Addr []uint64
	// Summary carries the timing model's run statistics.
	Summary cpu.BusTraces
}

// RunConfig bounds a trace-collection run.
type RunConfig struct {
	// MaxInstructions caps the simulated dynamic instruction count.
	MaxInstructions uint64
	// MaxBusValues caps each captured bus trace length (0 = unlimited).
	MaxBusValues int
}

// DefaultRunConfig is what the experiments use: enough instructions for
// trace statistics to stabilize while keeping full-suite sweeps fast.
func DefaultRunConfig() RunConfig {
	return RunConfig{MaxInstructions: 1_500_000, MaxBusValues: 120_000}
}

// Run executes the workload under the out-of-order timing model and
// captures its bus traffic.
func Run(w Workload, cfg RunConfig) (TraceSet, error) {
	p, err := w.Program()
	if err != nil {
		return TraceSet{}, err
	}
	sim, err := cpu.NewSimulator(p, cpu.DefaultConfig())
	if err != nil {
		return TraceSet{}, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	tr := sim.Run(cfg.MaxInstructions, cfg.MaxBusValues)
	if len(tr.RegisterBus) == 0 {
		return TraceSet{}, fmt.Errorf("workload %s: produced no register bus traffic", w.Name)
	}
	return TraceSet{Workload: w.Name, Reg: tr.RegisterBus, Mem: tr.MemoryBus, Addr: tr.MemoryAddrBus, Summary: tr}, nil
}

type cacheKey struct {
	name string
	cfg  RunConfig
}

var (
	cacheMu    sync.Mutex
	traceCache = map[cacheKey]TraceSet{}
)

// Traces returns the workload's bus traces, memoized per (workload,
// config) so the many figure sweeps sharing a trace do not re-simulate.
func Traces(name string, cfg RunConfig) (TraceSet, error) {
	key := cacheKey{name, cfg}
	cacheMu.Lock()
	ts, ok := traceCache[key]
	cacheMu.Unlock()
	if ok {
		return ts, nil
	}
	w, err := ByName(name)
	if err != nil {
		return TraceSet{}, err
	}
	ts, err = Run(w, cfg)
	if err != nil {
		return TraceSet{}, err
	}
	cacheMu.Lock()
	traceCache[key] = ts
	cacheMu.Unlock()
	return ts, nil
}

// ClearTraceCache drops all memoized traces (for tests and tools that
// sweep many configurations).
func ClearTraceCache() {
	cacheMu.Lock()
	traceCache = map[cacheKey]TraceSet{}
	cacheMu.Unlock()
}
