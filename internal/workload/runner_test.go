package workload

import (
	"sync"
	"testing"
)

// Single-flight contract: 16 goroutines racing on the same (workload,
// config) key must trigger exactly one simulation; everyone shares the
// winner's backing arrays. Run under -race this also stresses the cache's
// synchronization.
func TestTracesSingleFlight(t *testing.T) {
	ClearTraceCache()
	defer ClearTraceCache()
	cfg := RunConfig{MaxInstructions: 50_000, MaxBusValues: 5_000}
	const callers = 16
	results := make([]TraceSet, callers)
	errs := make([]error, callers)
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < callers; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait() // line everyone up on the cold cache
			results[i], errs[i] = Traces("li", cfg)
		}(i)
	}
	start.Done()
	done.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if &results[i].Reg[0] != &results[0].Reg[0] {
			t.Errorf("caller %d got a different backing array — duplicate simulation", i)
		}
	}
	hits, misses := TraceCacheStats()
	if misses != 1 {
		t.Errorf("misses = %d, want exactly 1 simulation", misses)
	}
	if hits != callers-1 {
		t.Errorf("hits = %d, want %d", hits, callers-1)
	}
}

// Distinct keys must not serialize behind each other's in-flight
// simulation, and each must simulate exactly once.
func TestTracesConcurrentDistinctKeys(t *testing.T) {
	ClearTraceCache()
	defer ClearTraceCache()
	cfg := RunConfig{MaxInstructions: 50_000, MaxBusValues: 5_000}
	names := []string{"li", "gcc", "swim", "compress"}
	var wg sync.WaitGroup
	for _, name := range names {
		for rep := 0; rep < 4; rep++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				if _, err := Traces(name, cfg); err != nil {
					t.Error(err)
				}
			}(name)
		}
	}
	wg.Wait()
	_, misses := TraceCacheStats()
	if misses != uint64(len(names)) {
		t.Errorf("misses = %d, want %d (one simulation per key)", misses, len(names))
	}
}

// Errors are part of the single-flight contract: a failing key is
// simulated once and its error delivered to every caller.
func TestTracesCachesErrors(t *testing.T) {
	ClearTraceCache()
	defer ClearTraceCache()
	cfg := RunConfig{MaxInstructions: 50_000, MaxBusValues: 5_000}
	if _, err := Traces("no-such-benchmark", cfg); err == nil {
		t.Fatal("unknown workload must fail")
	}
	if _, err := Traces("no-such-benchmark", cfg); err == nil {
		t.Fatal("cached lookup must repeat the failure")
	}
	_, misses := TraceCacheStats()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (error cached)", misses)
	}
}
