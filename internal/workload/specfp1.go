package workload

// SPECfp95 analogs, part 1: stencil and lattice kernels over float32
// arrays. The register bus sees their strided address arithmetic; the
// memory bus sees float bit patterns with smooth-value locality.

func init() {
	register(Workload{
		Name:        "swim",
		Suite:       SPECfp,
		Description: "shallow-water equations: alternating 5-point stencil sweeps over 64x64 grids with a forcing term (unit-stride FP loads, row-stride neighbours)",
		Source: `
	.data
u:	.space 16384            # 64x64 float32
v:	.space 16384
un:	.space 16384
	.text
	# constants: f20 = 0.25, f21 = 0.1
	li   r3, 1
	fcvt.s.w f20, r3
	li   r3, 4
	fcvt.s.w f1, r3
	fdiv f20, f20, f1
	li   r3, 1
	fcvt.s.w f21, r3
	li   r3, 10
	fcvt.s.w f1, r3
	fdiv f21, f21, f1
	# initialize u and v with smooth pseudo-random values
	li   r1, 123
	li   r2, 16807
	li   r3, 1000
	fcvt.s.w f10, r3
	la   r11, u
	li   r13, 8192          # fill u and v contiguously (they are adjacent)
init:
	mul  r1, r1, r2
	addi r1, r1, 7
	srli r4, r1, 16
	andi r4, r4, 1023
	fcvt.s.w f1, r4
	fdiv f1, f1, f10
	fsw  f1, 0(r11)
	addi r11, r11, 4
	addi r13, r13, -1
	bnez r13, init
	li   r26, 20
outer:
	la   r25, u             # src
	la   r27, un            # dst
	call sweep
	la   r25, un            # and back
	la   r27, u
	call sweep
	addi r26, r26, -1
	bnez r26, outer
	halt
sweep:                          # dst = 0.25*laplacian(src) + 0.1*v
	addi r11, r25, 260      # (1,1)
	addi r12, r27, 260
	la   r14, v
	addi r14, r14, 260
	li   r21, 62
srow:
	li   r22, 62
scol:
	flw  f1, -4(r11)
	flw  f2, 4(r11)
	flw  f3, -256(r11)
	flw  f4, 256(r11)
	fadd f1, f1, f2
	fadd f3, f3, f4
	fadd f1, f1, f3
	fmul f1, f1, f20
	flw  f5, 0(r14)
	fmul f5, f5, f21
	fadd f1, f1, f5
	fsw  f1, 0(r12)
	addi r11, r11, 4
	addi r12, r12, 4
	addi r14, r14, 4
	addi r22, r22, -1
	bnez r22, scol
	addi r11, r11, 8
	addi r12, r12, 8
	addi r14, r14, 8
	addi r21, r21, -1
	bnez r21, srow
	ret
`,
	})

	register(Workload{
		Name:        "tomcatv",
		Suite:       SPECfp,
		Description: "vectorized mesh generation: 9-point stencil with diagonal neighbours over two coupled 64x64 grids plus residual accumulation",
		Source: `
	.data
x:	.space 16384
y:	.space 16384
rx:	.space 16384
	.text
	li   r3, 1
	fcvt.s.w f20, r3
	li   r3, 8
	fcvt.s.w f1, r3
	fdiv f20, f20, f1       # 0.125
	li   r1, 31
	li   r2, 24693
	li   r3, 500
	fcvt.s.w f10, r3
	la   r11, x
	li   r13, 8192          # x and y contiguous
init:
	mul  r1, r1, r2
	addi r1, r1, 13
	srli r4, r1, 15
	andi r4, r4, 511
	fcvt.s.w f1, r4
	fdiv f1, f1, f10
	fsw  f1, 0(r11)
	addi r11, r11, 4
	addi r13, r13, -1
	bnez r13, init
	li   r26, 25
outer:
	la   r11, x
	la   r14, y
	la   r12, rx
	addi r11, r11, 260
	addi r14, r14, 260
	addi r12, r12, 260
	li   r21, 62
trow:
	li   r22, 62
tcol:
	flw  f1, -4(r11)        # west
	flw  f2, 4(r11)         # east
	flw  f3, -256(r11)      # north
	flw  f4, 256(r11)       # south
	flw  f5, -260(r11)      # nw
	flw  f6, -252(r11)      # ne
	flw  f7, 252(r11)       # sw
	flw  f8, 260(r11)       # se
	fadd f1, f1, f2
	fadd f3, f3, f4
	fadd f5, f5, f6
	fadd f7, f7, f8
	fadd f1, f1, f3
	fadd f5, f5, f7
	fadd f1, f1, f5
	fmul f1, f1, f20        # average of 8 neighbours
	flw  f9, 0(r14)
	fadd f9, f9, f1         # couple with y
	fsw  f9, 0(r12)         # residual grid
	flw  f2, 0(r11)
	fsub f2, f2, f1
	fabs f2, f2
	fadd f30, f30, f2       # residual norm accumulator
	addi r11, r11, 4
	addi r14, r14, 4
	addi r12, r12, 4
	addi r22, r22, -1
	bnez r22, tcol
	addi r11, r11, 8
	addi r14, r14, 8
	addi r12, r12, 8
	addi r21, r21, -1
	bnez r21, trow
	# feed the residual grid back into x
	la   r11, rx
	la   r12, x
	li   r13, 4096
tcopy:
	flw  f1, 0(r11)
	fsw  f1, 0(r12)
	addi r11, r11, 4
	addi r12, r12, 4
	addi r13, r13, -1
	bnez r13, tcopy
	addi r26, r26, -1
	bnez r26, outer
	halt
`,
	})

	register(Workload{
		Name:        "su2cor",
		Suite:       SPECfp,
		Description: "quantum chromodynamics: 2x2 complex matrix times 2-spinor products over a lattice (gather with link strides, dense FP multiply-add)",
		Source: `
	.data
psi:	.space 16384            # 1024 sites x 4 floats (re0,im0,re1,im1)
chi:	.space 16384
	.text
	# fixed gauge-link matrix entries in f16..f23 (a 2x2 complex matrix)
	li   r3, 3
	fcvt.s.w f16, r3
	li   r3, 5
	fcvt.s.w f1, r3
	fdiv f16, f16, f1       # 0.6
	li   r3, 4
	fcvt.s.w f17, r3
	fdiv f17, f17, f1       # 0.8
	fneg f18, f17           # -0.8
	fmov f19, f16
	li   r1, 71
	li   r2, 19997
	li   r3, 400
	fcvt.s.w f10, r3
	la   r11, psi
	li   r13, 4096
init:
	mul  r1, r1, r2
	addi r1, r1, 29
	srli r4, r1, 14
	andi r4, r4, 255
	fcvt.s.w f1, r4
	fdiv f1, f1, f10
	fsw  f1, 0(r11)
	addi r11, r11, 4
	addi r13, r13, -1
	bnez r13, init
	li   r26, 60
outer:
	la   r11, psi
	la   r12, chi
	li   r13, 1008          # sites (leave one link stride of headroom)
site:
	flw  f1, 0(r11)         # psi at this site
	flw  f2, 4(r11)
	flw  f3, 64(r11)        # neighbour site (link stride 16 sites)
	flw  f4, 68(r11)
	# chi0 = m00*psi0 + m01*psi1
	fmul f5, f16, f1
	fmul f6, f17, f3
	fadd f5, f5, f6
	# chi1 = m10*psi0 + m11*psi1
	fmul f7, f18, f2
	fmul f8, f19, f4
	fadd f7, f7, f8
	fsw  f5, 0(r12)
	fsw  f7, 4(r12)
	# second spinor component uses the conjugate
	fmul f5, f16, f2
	fmul f6, f18, f4
	fadd f5, f5, f6
	fmul f7, f17, f1
	fmul f8, f19, f3
	fadd f7, f7, f8
	fsw  f5, 8(r12)
	fsw  f7, 12(r12)
	addi r11, r11, 16
	addi r12, r12, 16
	addi r13, r13, -1
	bnez r13, site
	# swap chi back into psi for the next sweep
	la   r11, chi
	la   r12, psi
	li   r13, 4096
sswap:
	flw  f1, 0(r11)
	fsw  f1, 0(r12)
	addi r11, r11, 4
	addi r12, r12, 4
	addi r13, r13, -1
	bnez r13, sswap
	addi r26, r26, -1
	bnez r26, outer
	halt
`,
	})

	register(Workload{
		Name:        "hydro2d",
		Suite:       SPECfp,
		Description: "astrophysical hydrodynamics: flux computation with a minmod slope limiter over 1D strips (fabs/fmin heavy, neighbouring differences)",
		Source: `
	.data
q:	.space 16384            # state
fl:	.space 16384            # fluxes
	.text
	li   r3, 1
	fcvt.s.w f20, r3
	li   r3, 2
	fcvt.s.w f21, r3
	fdiv f22, f20, f21      # 0.5
	li   r1, 55
	li   r2, 17041
	li   r3, 300
	fcvt.s.w f10, r3
	la   r11, q
	li   r13, 4096
init:
	mul  r1, r1, r2
	addi r1, r1, 17
	srli r4, r1, 12
	andi r4, r4, 511
	fcvt.s.w f1, r4
	fdiv f1, f1, f10
	fsw  f1, 0(r11)
	addi r11, r11, 4
	addi r13, r13, -1
	bnez r13, init
	li   r26, 55
outer:
	la   r11, q
	la   r12, fl
	addi r11, r11, 4
	addi r12, r12, 4
	li   r13, 4094
cell:
	flw  f1, -4(r11)
	flw  f2, 0(r11)
	flw  f3, 4(r11)
	fsub f4, f2, f1         # left slope
	fsub f5, f3, f2         # right slope
	fabs f6, f4
	fabs f7, f5
	fmin f8, f6, f7         # minmod magnitude
	# sign from the left slope: limiter = 0 if slopes oppose
	fmul f9, f4, f5
	flt  r4, f9, f0         # product < 0 -> opposing
	beqz r4, sameSign
	fsub f8, f8, f8         # zero
sameSign:
	fmul f8, f8, f22
	fadd f9, f2, f8         # reconstructed edge value
	fsw  f9, 0(r12)
	addi r11, r11, 4
	addi r12, r12, 4
	addi r13, r13, -1
	bnez r13, cell
	# conservative update q -= d(flux)
	la   r11, q
	la   r12, fl
	addi r11, r11, 8
	addi r12, r12, 8
	li   r13, 4090
upd:
	flw  f1, 0(r12)
	flw  f2, -4(r12)
	fsub f3, f1, f2
	fmul f3, f3, f22
	flw  f4, 0(r11)
	fsub f4, f4, f3
	fsw  f4, 0(r11)
	addi r11, r11, 4
	addi r12, r12, 4
	addi r13, r13, -1
	bnez r13, upd
	addi r26, r26, -1
	bnez r26, outer
	halt
`,
	})

	register(Workload{
		Name:        "mgrid",
		Suite:       SPECfp,
		Description: "multigrid solver: 7-point 3D Laplacian smoothing over a 16^3 grid (plane/row/unit strides) with restriction to an 8^3 grid",
		Source: `
	.data
u3:	.space 16384            # 16x16x16 float32
r3d:	.space 16384
c3:	.space 2048             # 8x8x8 coarse grid
	.text
	li   r3, 1
	fcvt.s.w f20, r3
	li   r3, 6
	fcvt.s.w f1, r3
	fdiv f20, f20, f1       # 1/6
	li   r1, 17
	li   r2, 30011
	li   r3, 700
	fcvt.s.w f10, r3
	la   r11, u3
	li   r13, 4096
init:
	mul  r1, r1, r2
	addi r1, r1, 23
	srli r4, r1, 13
	andi r4, r4, 1023
	fcvt.s.w f1, r4
	fdiv f1, f1, f10
	fsw  f1, 0(r11)
	addi r11, r11, 4
	addi r13, r13, -1
	bnez r13, init
	li   r26, 25
outer:
	# smooth: r = (sum of 6 neighbours) / 6 over the interior
	la   r11, u3
	la   r12, r3d
	addi r11, r11, 1092     # (1,1,1): 1024+64+4
	addi r12, r12, 1092
	li   r21, 14            # planes
mplane:
	li   r22, 14            # rows
mrow:
	li   r23, 14            # cols
mcol:
	flw  f1, -4(r11)
	flw  f2, 4(r11)
	flw  f3, -64(r11)
	flw  f4, 64(r11)
	flw  f5, -1024(r11)
	flw  f6, 1024(r11)
	fadd f1, f1, f2
	fadd f3, f3, f4
	fadd f5, f5, f6
	fadd f1, f1, f3
	fadd f1, f1, f5
	fmul f1, f1, f20
	fsw  f1, 0(r12)
	addi r11, r11, 4
	addi r12, r12, 4
	addi r23, r23, -1
	bnez r23, mcol
	addi r11, r11, 8        # skip boundary columns
	addi r12, r12, 8
	addi r22, r22, -1
	bnez r22, mrow
	addi r11, r11, 128      # skip boundary rows
	addi r12, r12, 128
	addi r21, r21, -1
	bnez r21, mplane
	# restrict r to the coarse grid (every other point)
	la   r11, r3d
	la   r12, c3
	li   r21, 8
cplane:
	li   r22, 8
crow:
	li   r23, 8
ccol:
	flw  f1, 0(r11)
	fsw  f1, 0(r12)
	addi r11, r11, 8        # stride 2 in x
	addi r12, r12, 4
	addi r23, r23, -1
	bnez r23, ccol
	addi r11, r11, 64       # skip odd row
	addi r22, r22, -1
	bnez r22, crow
	addi r11, r11, 1024     # skip odd plane
	addi r21, r21, -1
	bnez r21, cplane
	# inject smoothed field back
	la   r11, r3d
	la   r12, u3
	li   r13, 4096
minj:
	flw  f1, 0(r11)
	fsw  f1, 0(r12)
	addi r11, r11, 4
	addi r12, r12, 4
	addi r13, r13, -1
	bnez r13, minj
	addi r26, r26, -1
	bnez r26, outer
	halt
`,
	})
}
