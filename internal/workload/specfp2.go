package workload

// SPECfp95 analogs, part 2.

func init() {
	register(Workload{
		Name:        "applu",
		Suite:       SPECfp,
		Description: "SSOR solver: forward and backward substitution sweeps with loop-carried dependences along two strides (serialized FP chains)",
		Source: `
	.data
au:	.space 16384            # 64x64 float32 solution
arhs:	.space 16384
	.text
	li   r3, 2
	fcvt.s.w f1, r3
	li   r3, 10
	fcvt.s.w f2, r3
	fdiv f21, f1, f2        # a = 0.2
	li   r3, 3
	fcvt.s.w f1, r3
	fdiv f22, f1, f2        # b = 0.3
	li   r3, 9
	fcvt.s.w f1, r3
	fdiv f23, f1, f2        # 1/d = 0.9
	li   r1, 91
	li   r2, 14221
	li   r3, 600
	fcvt.s.w f10, r3
	la   r11, au
	li   r13, 8192          # au and arhs contiguous
init:
	mul  r1, r1, r2
	addi r1, r1, 31
	srli r4, r1, 12
	andi r4, r4, 511
	fcvt.s.w f1, r4
	fdiv f1, f1, f10
	fsw  f1, 0(r11)
	addi r11, r11, 4
	addi r13, r13, -1
	bnez r13, init
	li   r26, 40
outer:
	# forward sweep: u[i] = (rhs[i] - a*u[i-1] - b*u[i-64]) * invd
	la   r11, au
	la   r12, arhs
	addi r11, r11, 260
	addi r12, r12, 260
	li   r13, 3900
fwd:
	flw  f1, 0(r12)
	flw  f2, -4(r11)
	flw  f3, -256(r11)
	fmul f2, f2, f21
	fmul f3, f3, f22
	fsub f1, f1, f2
	fsub f1, f1, f3
	fmul f1, f1, f23
	fsw  f1, 0(r11)
	addi r11, r11, 4
	addi r12, r12, 4
	addi r13, r13, -1
	bnez r13, fwd
	# backward sweep: u[i] = (u[i] - a*u[i+1] - b*u[i+64]) * invd
	la   r11, au
	addi r11, r11, 15860    # last interior element
	li   r13, 3900
bwd:
	flw  f1, 0(r11)
	flw  f2, 4(r11)
	flw  f3, 256(r11)
	fmul f2, f2, f21
	fmul f3, f3, f22
	fsub f1, f1, f2
	fsub f1, f1, f3
	fmul f1, f1, f23
	fsw  f1, 0(r11)
	addi r11, r11, -4
	addi r13, r13, -1
	bnez r13, bwd
	addi r26, r26, -1
	bnez r26, outer
	halt
`,
	})

	register(Workload{
		Name:        "turb3d",
		Suite:       SPECfp,
		Description: "turbulence simulation: FFT-style butterfly passes with halving strides over a 1024-point float array (power-of-two strided access)",
		Source: `
	.data
tb:	.space 4096             # 1024 float32
	.text
	li   r3, 7
	fcvt.s.w f1, r3
	li   r3, 10
	fcvt.s.w f2, r3
	fdiv f24, f1, f2        # twiddle 0.7
	li   r1, 63
	li   r2, 26003
	li   r3, 800
	fcvt.s.w f10, r3
	la   r11, tb
	li   r13, 1024
init:
	mul  r1, r1, r2
	addi r1, r1, 41
	srli r4, r1, 11
	andi r4, r4, 1023
	fcvt.s.w f1, r4
	fdiv f1, f1, f10
	fsw  f1, 0(r11)
	addi r11, r11, 4
	addi r13, r13, -1
	bnez r13, init
	li   r26, 120
outer:
	li   r21, 2048          # stride in bytes (512 floats)
pass:
	la   r11, tb
	la   r17, tb
	addi r17, r17, 4096     # end
block:
	mv   r22, r21           # bytes within the half-block
inner:
	add  r16, r11, r21
	flw  f1, 0(r11)
	flw  f2, 0(r16)
	fadd f3, f1, f2
	fsub f4, f1, f2
	fmul f4, f4, f24
	fsw  f3, 0(r11)
	fsw  f4, 0(r16)
	addi r11, r11, 4
	addi r22, r22, -4
	bnez r22, inner
	add  r11, r11, r21      # skip the partner half
	blt  r11, r17, block
	srli r21, r21, 1
	li   r18, 4
	bge  r21, r18, pass
	# renormalize so values stay bounded across outer iterations
	la   r11, tb
	li   r13, 1024
	li   r3, 1000
	fcvt.s.w f9, r3
norm:
	flw  f1, 0(r11)
	fdiv f1, f1, f9
	fsw  f1, 0(r11)
	addi r11, r11, 4
	addi r13, r13, -1
	bnez r13, norm
	addi r26, r26, -1
	bnez r26, outer
	halt
`,
	})

	register(Workload{
		Name:        "apsi",
		Suite:       SPECfp,
		Description: "mesoscale pollutant transport: cyclic-coefficient 4-tap convolutions over vertical columns (coefficient table reuse, unit stride)",
		Source: `
	.data
aq:	.space 16384            # 4096 float32
ao:	.space 16384
coef:	.float 0.1, 0.2, 0.3, 0.4, 0.3, 0.2, 0.1, 0.05
	.text
	li   r1, 37
	li   r2, 12289
	li   r3, 900
	fcvt.s.w f10, r3
	la   r11, aq
	li   r13, 4096
init:
	mul  r1, r1, r2
	addi r1, r1, 53
	srli r4, r1, 10
	andi r4, r4, 1023
	fcvt.s.w f1, r4
	fdiv f1, f1, f10
	fsw  f1, 0(r11)
	addi r11, r11, 4
	addi r13, r13, -1
	bnez r13, init
	li   r26, 70
outer:
	la   r11, aq
	la   r12, ao
	la   r14, coef
	li   r15, 0             # coefficient phase
	li   r13, 4090
conv:
	slli r4, r15, 2
	add  r4, r14, r4
	flw  f5, 0(r4)          # coef[phase]
	flw  f6, 4(r4)
	flw  f1, 0(r11)
	flw  f2, 4(r11)
	flw  f3, 8(r11)
	flw  f4, 12(r11)
	fmul f1, f1, f5
	fmul f2, f2, f6
	fmul f3, f3, f5
	fmul f4, f4, f6
	fadd f1, f1, f2
	fadd f3, f3, f4
	fadd f1, f1, f3
	fsw  f1, 0(r12)
	addi r15, r15, 1
	andi r15, r15, 7        # wrap coefficient phase (table has 8 entries)
	addi r11, r11, 4
	addi r12, r12, 4
	addi r13, r13, -1
	bnez r13, conv
	# copy back for the next pass
	la   r11, ao
	la   r12, aq
	li   r13, 4096
acopy:
	flw  f1, 0(r11)
	fsw  f1, 0(r12)
	addi r11, r11, 4
	addi r12, r12, 4
	addi r13, r13, -1
	bnez r13, acopy
	addi r26, r26, -1
	bnez r26, outer
	halt
`,
	})

	register(Workload{
		Name:        "fpppp",
		Suite:       SPECfp,
		Description: "two-electron integral derivatives: very large straight-line FP expression blocks with few memory references per flop (register-resident chains)",
		Source: `
	.data
fa:	.space 4096             # 1024 float32
fb:	.space 4096
	.text
	li   r3, 3
	fcvt.s.w f1, r3
	li   r3, 7
	fcvt.s.w f2, r3
	fdiv f24, f1, f2        # 3/7
	li   r3, 2
	fcvt.s.w f1, r3
	li   r3, 9
	fcvt.s.w f2, r3
	fdiv f25, f1, f2        # 2/9
	li   r1, 83
	li   r2, 22573
	li   r3, 450
	fcvt.s.w f10, r3
	la   r11, fa
	li   r13, 2048          # fa and fb contiguous
init:
	mul  r1, r1, r2
	addi r1, r1, 67
	srli r4, r1, 13
	andi r4, r4, 511
	fcvt.s.w f1, r4
	fdiv f1, f1, f10
	fsw  f1, 0(r11)
	addi r11, r11, 4
	addi r13, r13, -1
	bnez r13, init
	li   r26, 120
outer:
	la   r11, fa
	la   r12, fb
	li   r13, 1024
	fsub f30, f30, f30      # accumulator = 0
big:
	flw  f1, 0(r11)
	flw  f2, 0(r12)
	# a long straight-line dependency web, 2 loads / 1 store / 22 flops
	fmul f3, f1, f2
	fadd f4, f3, f24
	fmul f5, f4, f1
	fsub f6, f5, f2
	fmul f7, f6, f25
	fadd f8, f7, f3
	fmul f9, f8, f24
	fsub f11, f9, f4
	fmul f12, f11, f11
	fadd f13, f12, f5
	fmul f14, f13, f25
	fsub f15, f14, f6
	fadd f16, f15, f7
	fmul f17, f16, f24
	fadd f18, f17, f8
	fsub f19, f18, f9
	fmul f21, f19, f25
	fadd f22, f21, f11
	fmul f23, f22, f24
	fadd f26, f23, f12
	fmin f26, f26, f10      # keep bounded
	fadd f30, f30, f26
	fsw  f26, 0(r12)
	addi r11, r11, 4
	addi r12, r12, 4
	addi r13, r13, -1
	bnez r13, big
	addi r26, r26, -1
	bnez r26, outer
	halt
`,
	})

	register(Workload{
		Name:        "wave5",
		Suite:       SPECfp,
		Description: "particle-in-cell plasma: field gather, damped velocity push, position wrap and charge deposit (indexed gather/scatter between particle and grid arrays)",
		Source: `
	.data
pos:	.space 4096             # 1024 particles
vel:	.space 4096
field:	.space 1024             # 256 grid cells
rho:	.space 1024
	.text
	li   r3, 256
	fcvt.s.w f26, r3        # domain size
	li   r3, 1
	fcvt.s.w f20, r3
	li   r3, 100
	fcvt.s.w f1, r3
	fdiv f23, f20, f1       # dt = 0.01
	li   r3, 9
	fcvt.s.w f1, r3
	li   r3, 10
	fcvt.s.w f2, r3
	fdiv f27, f1, f2        # damping 0.9
	# init particle positions in [0,256) and the field in [-0.5, 0.5)
	li   r1, 29
	li   r2, 18517
	la   r11, pos
	li   r13, 1024
	li   r3, 16
	fcvt.s.w f10, r3
pinit:
	mul  r1, r1, r2
	addi r1, r1, 11
	srli r4, r1, 12
	andi r4, r4, 4095
	fcvt.s.w f1, r4
	fdiv f1, f1, f10        # 0..255.9
	fsw  f1, 0(r11)
	addi r11, r11, 4
	addi r13, r13, -1
	bnez r13, pinit
	la   r11, field
	li   r13, 256
	li   r3, 1024
	fcvt.s.w f10, r3
	li   r3, 2
	fcvt.s.w f11, r3
	fdiv f12, f20, f11      # 0.5
finit:
	mul  r1, r1, r2
	addi r1, r1, 19
	srli r4, r1, 14
	andi r4, r4, 1023
	fcvt.s.w f1, r4
	fdiv f1, f1, f10
	fsub f1, f1, f12        # center around zero
	fsw  f1, 0(r11)
	addi r11, r11, 4
	addi r13, r13, -1
	bnez r13, finit
	la   r14, field
	la   r15, rho
	li   r26, 120
outer:
	la   r11, pos
	la   r12, vel
	li   r13, 1024
part:
	flw  f1, 0(r11)
	flw  f2, 0(r12)
	fcvt.w.s r4, f1
	andi r4, r4, 255
	slli r4, r4, 2
	add  r5, r14, r4
	flw  f3, 0(r5)          # gather field at the particle
	fmul f2, f2, f27        # damped push
	fadd f2, f2, f3
	fmul f5, f2, f23
	fadd f1, f1, f5
	# wrap position into [0, 256)
	flt  r6, f1, f26
	bnez r6, wrapLo
	fsub f1, f1, f26
wrapLo:
	flt  r6, f1, f0
	beqz r6, noWrap
	fadd f1, f1, f26
noWrap:
	fsw  f1, 0(r11)
	fsw  f2, 0(r12)
	# deposit charge
	add  r7, r15, r4
	flw  f6, 0(r7)
	fadd f6, f6, f23
	fsw  f6, 0(r7)
	addi r11, r11, 4
	addi r12, r12, 4
	addi r13, r13, -1
	bnez r13, part
	addi r26, r26, -1
	bnez r26, outer
	halt
`,
	})
}
