package workload

// SPECint95 analogs. Each kernel reproduces the bus-visible behaviour of
// its namesake: compress's run-length byte streams, gcc's hash-table
// probing, go's branchy board scans, ijpeg's integer transform
// multiply-accumulates, li's cons-cell pointer chasing, m88ksim's
// decode-dispatch interpretation, and perl's string scanning.

func init() {
	register(Workload{
		Name:        "compress",
		Suite:       SPECint,
		Description: "run-length compression of a pseudo-random byte buffer with runs, plus decompression checksum (byte loads/stores, data-dependent branches)",
		Source: `
	.data
src:	.space 4096
dst:	.space 8200
	.text
	li   r26, 60            # outer iterations
	li   r1, 12345          # LCG state
outer:
	# fill src with runs of random bytes
	la   r11, src
	li   r13, 4096
	li   r2, 20077
fill:
	mul  r1, r1, r2
	addi r1, r1, 12345
	srli r3, r1, 16
	andi r3, r3, 7
	addi r3, r3, 1          # run length 1..8
	srli r4, r1, 8
	andi r4, r4, 255        # run byte
frun:
	beqz r13, fdone
	sb   r4, 0(r11)
	addi r11, r11, 1
	addi r13, r13, -1
	addi r3, r3, -1
	bnez r3, frun
	bnez r13, fill
fdone:
	# RLE-compress src into dst
	la   r11, src
	la   r12, dst
	li   r13, 4095
	lbu  r4, 0(r11)
	addi r11, r11, 1
	li   r5, 1              # run count
comp:
	beqz r13, cflush
	lbu  r6, 0(r11)
	addi r11, r11, 1
	addi r13, r13, -1
	beq  r6, r4, csame
	sb   r5, 0(r12)
	sb   r4, 1(r12)
	addi r12, r12, 2
	mv   r4, r6
	li   r5, 1
	j    comp
csame:
	addi r5, r5, 1
	j    comp
cflush:
	sb   r5, 0(r12)
	sb   r4, 1(r12)
	addi r12, r12, 2
	# checksum the compressed stream
	la   r14, dst
	li   r7, 0
csum:
	lbu  r8, 0(r14)
	add  r7, r7, r8
	addi r14, r14, 1
	bne  r14, r12, csum
	add  r28, r28, r7
	addi r26, r26, -1
	bnez r26, outer
	halt
`,
	})

	register(Workload{
		Name:        "gcc",
		Suite:       SPECint,
		Description: "symbol-table construction: hashing a token stream into an open-addressed table with linear probing (irregular loads, hot table entries)",
		Source: `
	.data
table:	.space 16384            # 2048 entries of (key, count)
	.text
	li   r26, 30
	li   r1, 777
outer:
	li   r13, 6000          # tokens per pass
	li   r2, 20021
tok:
	mul  r1, r1, r2
	addi r1, r1, 11213
	srli r3, r1, 10
	andi r3, r3, 1023       # token id
	addi r9, r3, 1          # stored key (0 marks empty)
	li   r4, 97
	mul  r4, r3, r4
	andi r4, r4, 2047       # hash bucket
	la   r5, table
probe:
	slli r6, r4, 3
	add  r6, r5, r6
	lw   r7, 0(r6)
	beqz r7, insert
	beq  r7, r9, hit
	addi r4, r4, 1
	andi r4, r4, 2047
	j    probe
insert:
	sw   r9, 0(r6)
hit:
	lw   r8, 4(r6)
	addi r8, r8, 1
	sw   r8, 4(r6)
	addi r13, r13, -1
	bnez r13, tok
	addi r26, r26, -1
	bnez r26, outer
	halt
`,
	})

	register(Workload{
		Name:        "go",
		Suite:       SPECint,
		Description: "board-position evaluation: repeated neighbourhood scans over a 19x19 byte board with data-dependent updates (branchy, byte traffic)",
		Source: `
	.data
board:	.space 400              # 19x19 plus padding
	.text
	li   r26, 400
	li   r1, 999
	# initialize the board with stones in {0,1,2}
	la   r11, board
	li   r13, 361
	li   r2, 31337
	li   r4, 3
init:
	mul  r1, r1, r2
	addi r1, r1, 7
	srli r3, r1, 9
	rem  r3, r3, r4
	sb   r3, 0(r11)
	addi r11, r11, 1
	addi r13, r13, -1
	bnez r13, init
outer:
	la   r11, board
	addi r11, r11, 20       # first interior point
	li   r13, 323
scan:
	lbu  r3, 0(r11)
	lbu  r4, -1(r11)
	lbu  r5, 1(r11)
	lbu  r6, -19(r11)
	lbu  r7, 19(r11)
	add  r8, r4, r5
	add  r8, r8, r6
	add  r8, r8, r7
	slti r9, r8, 5
	bnez r9, noflip
	bnez r3, noflip
	li   r10, 1
	sb   r10, 0(r11)
noflip:
	add  r28, r28, r8
	addi r11, r11, 1
	addi r13, r13, -1
	bnez r13, scan
	addi r26, r26, -1
	bnez r26, outer
	halt
`,
	})

	register(Workload{
		Name:        "ijpeg",
		Suite:       SPECint,
		Description: "integer 8-point transform over image rows: butterfly sums/differences scaled by fixed-point constants (multiply-accumulate, strided word stores)",
		Source: `
	.data
img:	.space 4096             # 64x64 bytes
out:	.space 16384            # 64x64 words
	.text
	li   r26, 120
	li   r1, 4242
	# fill image with LCG bytes
	la   r11, img
	li   r13, 4096
	li   r2, 16807
imginit:
	mul  r1, r1, r2
	addi r1, r1, 3
	srli r3, r1, 11
	sb   r3, 0(r11)
	addi r11, r11, 1
	addi r13, r13, -1
	bnez r13, imginit
outer:
	la   r11, img
	la   r12, out
	li   r13, 512           # rows of 8 pixels
row:
	lbu  r3, 0(r11)
	lbu  r4, 1(r11)
	lbu  r5, 2(r11)
	lbu  r6, 3(r11)
	lbu  r7, 4(r11)
	lbu  r8, 5(r11)
	lbu  r9, 6(r11)
	lbu  r10, 7(r11)
	# butterflies
	add  r14, r3, r10       # s0
	sub  r15, r3, r10       # d0
	add  r16, r4, r9        # s1
	sub  r17, r4, r9        # d1
	add  r18, r5, r8        # s2
	sub  r19, r5, r8        # d2
	add  r21, r6, r7        # s3
	sub  r22, r6, r7        # d3
	# scaled outputs (fixed point, >>8)
	li   r2, 181
	add  r23, r14, r21
	mul  r23, r23, r2
	srai r23, r23, 8
	sw   r23, 0(r12)
	li   r2, 251
	mul  r23, r15, r2
	li   r2, 50
	mul  r24, r22, r2
	add  r23, r23, r24
	srai r23, r23, 8
	sw   r23, 4(r12)
	li   r2, 236
	add  r23, r16, r18
	mul  r23, r23, r2
	srai r23, r23, 8
	sw   r23, 8(r12)
	li   r2, 142
	sub  r23, r17, r19
	mul  r23, r23, r2
	srai r23, r23, 8
	sw   r23, 12(r12)
	sub  r23, r14, r21
	sw   r23, 16(r12)
	add  r23, r15, r22
	sw   r23, 20(r12)
	sub  r23, r16, r18
	sw   r23, 24(r12)
	add  r23, r17, r19
	sw   r23, 28(r12)
	addi r11, r11, 8
	addi r12, r12, 32
	addi r13, r13, -1
	bnez r13, row
	addi r26, r26, -1
	bnez r26, outer
	halt
`,
	})

	register(Workload{
		Name:        "li",
		Suite:       SPECint,
		Description: "lisp-style cons cells: build a 2000-node list, then repeatedly traverse and reverse it in place (pointer chasing, small hot value set)",
		Source: `
	.data
heap:	.space 16000            # 2000 cons cells (car, cdr)
	.text
	la   r11, heap
	li   r13, 2000
	li   r12, 0             # nil
	li   r1, 5
build:
	sw   r1, 0(r11)
	sw   r12, 4(r11)
	mv   r12, r11
	addi r11, r11, 8
	addi r1, r1, 3
	addi r13, r13, -1
	bnez r13, build
	li   r26, 250
outer:
	# traverse, summing cars
	mv   r2, r12
	li   r3, 0
sum:
	beqz r2, sdone
	lw   r4, 0(r2)
	add  r3, r3, r4
	lw   r2, 4(r2)
	j    sum
sdone:
	# reverse the list in place
	mv   r2, r12
	li   r5, 0
rev:
	beqz r2, rdone
	lw   r6, 4(r2)
	sw   r5, 4(r2)
	mv   r5, r2
	mv   r2, r6
	j    rev
rdone:
	mv   r12, r5
	add  r28, r28, r3
	addi r26, r26, -1
	bnez r26, outer
	halt
`,
	})

	register(Workload{
		Name:        "m88ksim",
		Suite:       SPECint,
		Description: "microprocessor simulation: a decode-dispatch interpreter executing a synthetic virtual program over eight virtual registers",
		Source: `
	.data
vprog:	.space 4096             # 1024 virtual instructions
vregs:	.space 32               # 8 virtual registers
	.text
	li   r1, 31415
	li   r2, 16807
	la   r11, vprog
	li   r13, 1024
geninit:
	mul  r1, r1, r2
	addi r1, r1, 9
	srli r3, r1, 7
	sw   r3, 0(r11)
	addi r11, r11, 4
	addi r13, r13, -1
	bnez r13, geninit
	li   r26, 160
outer:
	la   r11, vprog
	la   r12, vregs
	li   r13, 1024
vloop:
	lw   r3, 0(r11)         # fetch virtual instruction
	andi r4, r3, 3          # opcode
	srli r5, r3, 2
	andi r5, r5, 7          # dst
	srli r6, r3, 5
	andi r6, r6, 7          # src
	srli r7, r3, 8
	andi r7, r7, 255        # imm
	slli r5, r5, 2
	add  r5, r12, r5        # &vregs[dst]
	slli r6, r6, 2
	add  r6, r12, r6        # &vregs[src]
	beqz r4, vadd
	addi r8, r4, -1
	beqz r8, vxor
	addi r8, r4, -2
	beqz r8, vimm
	# opcode 3: accumulate into checksum
	lw   r9, 0(r5)
	add  r28, r28, r9
	j    vnext
vadd:
	lw   r9, 0(r5)
	lw   r10, 0(r6)
	add  r9, r9, r10
	sw   r9, 0(r5)
	j    vnext
vxor:
	lw   r9, 0(r5)
	lw   r10, 0(r6)
	xor  r9, r9, r10
	add  r9, r9, r7
	sw   r9, 0(r5)
	j    vnext
vimm:
	sw   r7, 0(r5)
vnext:
	addi r11, r11, 4
	addi r13, r13, -1
	bnez r13, vloop
	addi r26, r26, -1
	bnez r26, outer
	halt
`,
	})

	register(Workload{
		Name:        "perl",
		Suite:       SPECint,
		Description: "text processing: naive substring search of a 6-byte pattern over an 8KB 4-symbol text, counting matches (byte compares, inner-loop branches)",
		Source: `
	.data
text:	.space 8192
pat:	.byte 1, 2, 1, 0, 3, 1
	.text
	li   r1, 2718
	li   r2, 28411
	la   r11, text
	li   r13, 8192
tinit:
	mul  r1, r1, r2
	addi r1, r1, 1021
	srli r3, r1, 13
	andi r3, r3, 3
	sb   r3, 0(r11)
	addi r11, r11, 1
	addi r13, r13, -1
	bnez r13, tinit
	li   r26, 40
outer:
	la   r11, text
	li   r13, 8186          # positions to try
	li   r14, 0             # match count
pos:
	la   r12, pat
	mv   r15, r11
	li   r16, 6
cmp:
	lbu  r3, 0(r15)
	lbu  r4, 0(r12)
	bne  r3, r4, mismatch
	addi r15, r15, 1
	addi r12, r12, 1
	addi r16, r16, -1
	bnez r16, cmp
	addi r14, r14, 1        # full match
mismatch:
	addi r11, r11, 1
	addi r13, r13, -1
	bnez r13, pos
	add  r28, r28, r14
	addi r26, r26, -1
	bnez r26, outer
	halt
`,
	})
}
