package workload

import (
	"sync"
	"testing"
)

// TestStatsReadableDuringTraces is the -race regression test for the
// cache-stats reporting paths: Stats and TraceCacheStats must be safely
// readable while simulations and cache lookups are in flight — the serve
// /metrics endpoint scrapes them continuously under load, and the -v
// reporting path reads them while late experiment goroutines may still
// be touching the cache.
func TestStatsReadableDuringTraces(t *testing.T) {
	ClearTraceCache()
	cfg := RunConfig{MaxInstructions: 20_000, MaxBusValues: 2_000}
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	for s := 0; s < 4; s++ {
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cs := Stats()
				h, _ := TraceCacheStats()
				// Counters are monotone: a snapshot taken later can only
				// be >= one taken earlier.
				if h < cs.MemHits {
					t.Errorf("hits went backwards: %d then %d", cs.MemHits, h)
					return
				}
			}
		}()
	}
	names := []string{"li", "compress", "go"}
	var workers sync.WaitGroup
	for w := 0; w < 6; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			for i := 0; i < 4; i++ {
				if _, err := Traces(names[(w+i)%len(names)], cfg); err != nil {
					t.Errorf("Traces: %v", err)
					return
				}
			}
		}(w)
	}
	workers.Wait()
	close(stop)
	scrapes.Wait()
	s := Stats()
	if s.MemMisses != uint64(len(names)) {
		t.Errorf("misses %d, want exactly %d (one per distinct workload)", s.MemMisses, len(names))
	}
	if s.MemHits+s.MemMisses != 6*4 {
		t.Errorf("hits %d + misses %d != %d calls", s.MemHits, s.MemMisses, 6*4)
	}
}
