// Package workload provides the reproduction's substitute for the SPEC95
// benchmark suite: seventeen hand-written programs for the internal/cpu
// simulator, one per benchmark the paper's figures report, each mimicking
// the qualitative bus behaviour of its namesake — value working-set size,
// stride structure, pointer chasing, repeat patterns — plus the uniformly
// random value source the paper uses as the traditional (and misleading,
// §4.4) evaluation baseline.
//
// SPEC95 binaries and reference inputs are not redistributable; what the
// paper's evaluation actually consumes is the *value streams* on the
// register-file output port and memory data bus, so the substitution
// preserves the relevant behaviour: real programs executing on the same
// style of out-of-order core, with integer codes built around hashing,
// interpretation, string scanning and pointer structures, and FP codes
// built around strided stencil and lattice kernels over float32 arrays.
package workload

import (
	"fmt"
	"sort"

	"buspower/internal/cpu"
	"buspower/internal/stats"
)

// Suite labels a workload's benchmark family.
type Suite int

const (
	// SPECint95 analog.
	SPECint Suite = iota
	// SPECfp95 analog.
	SPECfp
	// Synthetic sources (random).
	Synthetic
)

// String returns the suite label.
func (s Suite) String() string {
	switch s {
	case SPECint:
		return "SPECint"
	case SPECfp:
		return "SPECfp"
	default:
		return "synthetic"
	}
}

// Workload is one benchmark program.
type Workload struct {
	// Name matches the SPEC95 benchmark it stands in for.
	Name string
	// Suite is the benchmark family.
	Suite Suite
	// Description states what the kernel does and which behaviour of the
	// original it mimics.
	Description string
	// Source is the assembly text.
	Source string
}

// Program assembles the workload.
func (w Workload) Program() (*cpu.Program, error) {
	p, err := cpu.Assemble(w.Source)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return p, nil
}

var registry = map[string]Workload{}

func register(w Workload) {
	if _, dup := registry[w.Name]; dup {
		panic("workload: duplicate " + w.Name)
	}
	registry[w.Name] = w
}

// All returns every registered workload, SPECint first, each suite sorted
// by name.
func All() []Workload {
	out := make([]Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ByName looks a workload up.
func ByName(name string) (Workload, error) {
	w, ok := registry[name]
	if !ok {
		return Workload{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return w, nil
}

// Names returns all workload names in All() order.
func Names() []string {
	ws := All()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

// BySuite returns the workloads of one suite.
func BySuite(s Suite) []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Suite == s {
			out = append(out, w)
		}
	}
	return out
}

// RandomTrace returns n uniformly distributed 32-bit values — the
// traditional random-traffic baseline the paper argues overestimates
// coding benefit.
func RandomTrace(n int, seed uint64) []uint64 {
	rng := stats.NewRNG(seed)
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(rng.Uint32())
	}
	return out
}
