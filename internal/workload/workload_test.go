package workload

import (
	"testing"

	"buspower/internal/cpu"
	"buspower/internal/stats"
)

func TestRegistryComplete(t *testing.T) {
	wantInt := []string{"compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl"}
	wantFP := []string{"applu", "apsi", "fpppp", "hydro2d", "mgrid", "su2cor", "swim", "tomcatv", "turb3d", "wave5"}
	for _, name := range wantInt {
		w, err := ByName(name)
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if w.Suite != SPECint {
			t.Errorf("%s should be SPECint", name)
		}
	}
	for _, name := range wantFP {
		w, err := ByName(name)
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if w.Suite != SPECfp {
			t.Errorf("%s should be SPECfp", name)
		}
	}
	if got := len(All()); got != len(wantInt)+len(wantFP) {
		t.Errorf("registry holds %d workloads, want %d", got, len(wantInt)+len(wantFP))
	}
	if _, err := ByName("vortex"); err == nil {
		t.Error("unknown workload lookup must fail")
	}
}

func TestAllProgramsAssemble(t *testing.T) {
	for _, w := range All() {
		if _, err := w.Program(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if w.Description == "" {
			t.Errorf("%s: missing description", w.Name)
		}
	}
}

// Every workload must execute without faulting, make progress, and produce
// traffic on both buses.
func TestAllWorkloadsExecute(t *testing.T) {
	cfg := RunConfig{MaxInstructions: 120_000, MaxBusValues: 30_000}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			ts, err := Run(w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ts.Summary.Instructions < 100_000 {
				t.Errorf("only %d instructions executed; kernel too short for tracing", ts.Summary.Instructions)
			}
			if len(ts.Reg) < 10_000 {
				t.Errorf("register trace too short: %d", len(ts.Reg))
			}
			if len(ts.Mem) < 100 {
				t.Errorf("memory trace too short: %d", len(ts.Mem))
			}
			if ts.Summary.IPC <= 0.05 || ts.Summary.IPC > 4 {
				t.Errorf("implausible IPC %v", ts.Summary.IPC)
			}
		})
	}
}

// The paper's Figure 8 premise: real bus traffic has windowed value
// locality that random traffic lacks.
func TestWorkloadsShowValueLocality(t *testing.T) {
	cfg := RunConfig{MaxInstructions: 200_000, MaxBusValues: 40_000}
	random := RandomTrace(40_000, 1)
	randomUnique := stats.WindowUniqueFraction(random, 16)
	if randomUnique < 0.99 {
		t.Fatalf("random trace window-uniqueness %v, want ~1", randomUnique)
	}
	locality := 0
	for _, name := range []string{"gcc", "li", "swim", "compress"} {
		ts, err := Traces(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if u := stats.WindowUniqueFraction(ts.Reg, 16); u < 0.8*randomUnique {
			locality++
		} else {
			t.Logf("%s: window-unique fraction %v", name, u)
		}
	}
	if locality < 3 {
		t.Errorf("only %d/4 workloads show register-bus value locality", locality)
	}
}

func TestTraceCaching(t *testing.T) {
	ClearTraceCache()
	cfg := RunConfig{MaxInstructions: 50_000, MaxBusValues: 5_000}
	a, err := Traces("li", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Traces("li", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if &a.Reg[0] != &b.Reg[0] {
		t.Error("second lookup should hit the cache (same backing array)")
	}
	ClearTraceCache()
}

func TestRandomTraceDeterministic(t *testing.T) {
	a := RandomTrace(100, 7)
	b := RandomTrace(100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random trace not reproducible")
		}
	}
	c := RandomTrace(100, 8)
	same := 0
	for i := range c {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 10 {
		t.Error("different seeds produced near-identical traces")
	}
	for _, v := range a {
		if v > 0xFFFFFFFF {
			t.Fatal("random trace values must be 32-bit")
		}
	}
}

func TestSuitePartition(t *testing.T) {
	ints := BySuite(SPECint)
	fps := BySuite(SPECfp)
	if len(ints) != 7 || len(fps) != 10 {
		t.Errorf("suite sizes: %d int, %d fp", len(ints), len(fps))
	}
	if Names()[0] != "compress" {
		t.Errorf("Names() ordering unexpected: %v", Names()[:3])
	}
}

// Determinism across runs: the same workload and config must produce
// byte-identical traces (everything is seeded).
func TestWorkloadDeterminism(t *testing.T) {
	cfg := RunConfig{MaxInstructions: 60_000, MaxBusValues: 10_000}
	w, _ := ByName("m88ksim")
	a, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Reg) != len(b.Reg) {
		t.Fatal("trace lengths differ across runs")
	}
	for i := range a.Reg {
		if a.Reg[i] != b.Reg[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

// FP workloads must put FP bit patterns on the memory bus and integer
// address arithmetic on the register bus.
func TestFPWorkloadBusCharacter(t *testing.T) {
	cfg := RunConfig{MaxInstructions: 200_000, MaxBusValues: 20_000}
	ts, err := Traces("swim", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Register bus: dominated by addresses/counters, so most values are
	// small-ish integers or DataBase-relative addresses; at least some
	// strided run should exist. Check: many values share high bytes.
	high := map[uint64]int{}
	for _, v := range ts.Reg {
		high[v>>16]++
	}
	max := 0
	for _, c := range high {
		if c > max {
			max = c
		}
	}
	if float64(max) < 0.2*float64(len(ts.Reg)) {
		t.Error("expected clustered high bytes on FP workload's register bus")
	}
	// Memory bus: float bit patterns have biased exponent bytes.
	expBias := 0
	for _, v := range ts.Mem {
		b := (v >> 23) & 0xFF
		if b >= 0x70 && b <= 0x87 {
			expBias++
		}
	}
	if float64(expBias) < 0.3*float64(len(ts.Mem)) {
		t.Errorf("memory bus does not look like float32 traffic (%d/%d biased exponents)", expBias, len(ts.Mem))
	}
}

func TestWorkloadProgramsHalt(t *testing.T) {
	// With an unbounded instruction budget every workload must halt on its
	// own (outer iteration counters are finite). Run the two shortest.
	for _, name := range []string{"perl", "li"} {
		w, _ := ByName(name)
		p, err := w.Program()
		if err != nil {
			t.Fatal(err)
		}
		c, err := cpu.NewCore(p)
		if err != nil {
			t.Fatal(err)
		}
		c.Run(100_000_000)
		if !c.Halted() {
			t.Errorf("%s did not halt within 100M instructions", name)
		}
	}
}
