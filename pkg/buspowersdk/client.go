// Package buspowersdk is the typed Go client for the buspower
// evaluation service: synchronous evaluation (/v1/eval), async batch
// jobs with Server-Sent-Events streaming (/v1/jobs), the discovery
// endpoints (/v1/schemes, /v1/workloads) and the operational surface
// (/healthz, /metrics). Transient failures — connection errors, 429
// shedding, 502/503 — are retried with exponential backoff, honoring
// the server's Retry-After hint; everything else surfaces as a typed
// *APIError.
package buspowersdk

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to one buspower server (or one replica of a shard
// group — replicas route internally, so any member works).
type Client struct {
	base    string
	httpc   *http.Client
	retries int
	backoff time.Duration
	maxWait time.Duration
	// sleep is the retry delay hook; tests replace it to observe the
	// backoff schedule without waiting it out.
	sleep func(context.Context, time.Duration) error
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport, instrumentation).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithRetries sets how many times a transient failure is retried
// (default 3; 0 disables retrying).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base delay and the per-attempt cap of the
// exponential backoff (defaults 250ms and 5s). A server Retry-After
// overrides the computed delay but never the cap.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) {
		if base > 0 {
			c.backoff = base
		}
		if max > 0 {
			c.maxWait = max
		}
	}
}

// New builds a Client for the server at baseURL, e.g.
// "http://localhost:8080".
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("buspowersdk: base URL %q is not absolute", baseURL)
	}
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		httpc:   &http.Client{Transport: newTransport()},
		retries: 3,
		backoff: 250 * time.Millisecond,
		maxWait: 5 * time.Second,
		sleep:   sleepCtx,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// newTransport clones the default transport but raises the per-host
// idle-connection cap: the stock limit of 2 forces a fresh TCP
// handshake on nearly every request once more than two goroutines share
// a client, which dominates latency under concurrent load.
func newTransport() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 256
	return t
}

// BaseURL returns the server address the client was built with.
func (c *Client) BaseURL() string { return c.base }

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// APIError is a non-2xx response, decoded from the server's uniform
// {"error": ...} envelope.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the server's error text (or a synthesized one when the
	// body was not the JSON envelope).
	Message string
	// RetryAfter is the parsed Retry-After hint (0 when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("buspower server: %d: %s", e.StatusCode, e.Message)
}

// Temporary reports whether retrying the same request can succeed:
// load shedding (429) and gateway-style failures (502, 503).
func (e *APIError) Temporary() bool {
	switch e.StatusCode {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// errorFromResponse drains resp and builds the *APIError.
func errorFromResponse(resp *http.Response) *APIError {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	e := &APIError{StatusCode: resp.StatusCode}
	var envelope struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &envelope) == nil && envelope.Error != "" {
		e.Message = envelope.Error
	} else {
		e.Message = strings.TrimSpace(string(body))
		if e.Message == "" {
			e.Message = http.StatusText(resp.StatusCode)
		}
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// doJSON performs one API call with the retry policy and decodes a 2xx
// JSON body into out (skipped when out is nil). body is re-sent
// verbatim on every retry.
func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, out interface{}) (*http.Response, error) {
	resp, err := c.do(ctx, method, path, body, "application/json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if out != nil {
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("buspowersdk: reading %s %s response: %w", method, path, err)
		}
		if err := json.Unmarshal(data, out); err != nil {
			return nil, fmt.Errorf("buspowersdk: decoding %s %s response: %w", method, path, err)
		}
	}
	return resp, nil
}

// do runs the request with retries and returns the first 2xx response,
// body unread. Non-2xx becomes *APIError; temporary ones are retried
// per the backoff policy before surfacing.
func (c *Client) do(ctx context.Context, method, path string, body []byte, contentType string) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.httpc.Do(req)
		switch {
		case err != nil:
			// Connection-level failure: the other retryable class.
			lastErr = err
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			return resp, nil
		default:
			apiErr := errorFromResponse(resp)
			resp.Body.Close()
			if !apiErr.Temporary() {
				return nil, apiErr
			}
			lastErr = apiErr
		}
		if attempt >= c.retries {
			return nil, lastErr
		}
		if err := c.sleep(ctx, c.retryDelay(attempt, lastErr)); err != nil {
			return nil, err
		}
	}
}

// retryDelay computes the wait before retry attempt+1: exponential from
// the base, with a server Retry-After taking precedence, both capped.
func (c *Client) retryDelay(attempt int, lastErr error) time.Duration {
	d := c.maxWait
	if attempt < 16 { // beyond 2^16 the shift is academic; pin to the cap
		d = c.backoff << attempt
	}
	if apiErr, ok := lastErr.(*APIError); ok && apiErr.RetryAfter > d {
		d = apiErr.RetryAfter
	}
	if d > c.maxWait {
		d = c.maxWait
	}
	return d
}

// Eval evaluates one request synchronously.
func (c *Client) Eval(ctx context.Context, req EvalRequest) (*EvalResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out EvalResponse
	if _, err := c.doJSON(ctx, http.MethodPost, "/v1/eval", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// EvalRaw evaluates a pre-marshalled EvalRequest body and returns the
// raw response JSON undecoded, with the same retry policy as Eval. For
// callers that re-send a fixed request set (load generators, proxies)
// and don't want per-call marshal/unmarshal costs in the way.
func (c *Client) EvalRaw(ctx context.Context, body []byte) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodPost, "/v1/eval", body, "application/json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("buspowersdk: reading POST /v1/eval response: %w", err)
	}
	return data, nil
}

// Schemes lists the accepted coding-scheme grammar.
func (c *Client) Schemes(ctx context.Context) (*SchemesResponse, error) {
	var out SchemesResponse
	if _, err := c.doJSON(ctx, http.MethodGet, "/v1/schemes", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Workloads lists the evaluable trace sources.
func (c *Client) Workloads(ctx context.Context) ([]WorkloadInfo, error) {
	var out struct {
		Workloads []WorkloadInfo `json:"workloads"`
	}
	if _, err := c.doJSON(ctx, http.MethodGet, "/v1/workloads", nil, &out); err != nil {
		return nil, err
	}
	return out.Workloads, nil
}

// Health reports the server's liveness ("ok", or "draining" wrapped in
// a 503 *APIError during shutdown).
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var out Health
	if _, err := c.doJSON(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the raw Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.do(ctx, http.MethodGet, "/metrics", nil, "")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(data), nil
}
