package buspowersdk

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastClient builds a client whose sleeps are recorded, not slept.
func fastClient(t *testing.T, base string, opts ...Option) (*Client, *[]time.Duration) {
	t.Helper()
	c, err := New(base, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	return c, &slept
}

func TestNewRejectsBadURL(t *testing.T) {
	for _, bad := range []string{"", "localhost:8080", "http://", "::"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
}

// TestRetryOn429HonorsRetryAfter: a shed request backs off for the
// server-quoted interval, not the computed exponential one, and then
// succeeds.
func TestRetryOn429HonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"server saturated"}`)
			return
		}
		fmt.Fprint(w, `{"scheme":"gray","energy_removed_pct":12.5}`)
	}))
	defer srv.Close()
	c, slept := fastClient(t, srv.URL, WithBackoff(10*time.Millisecond, 10*time.Second))
	resp, err := c.Eval(context.Background(), EvalRequest{Values: []uint64{1}, Scheme: "gray"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.EnergyRemovedPct != 12.5 {
		t.Fatalf("resp = %+v", resp)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if len(*slept) != 2 || (*slept)[0] != 3*time.Second || (*slept)[1] != 3*time.Second {
		t.Fatalf("backoff schedule %v, want two 3s waits from Retry-After", *slept)
	}
}

// TestRetryAfterCappedByMaxWait: a hostile or misconfigured Retry-After
// cannot park the client beyond its own cap.
func TestRetryAfterCappedByMaxWait(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3600")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"busy"}`)
	}))
	defer srv.Close()
	c, slept := fastClient(t, srv.URL, WithRetries(1), WithBackoff(time.Millisecond, 2*time.Second))
	_, err := c.Eval(context.Background(), EvalRequest{Values: []uint64{1}, Scheme: "gray"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("err = %v", err)
	}
	if apiErr.RetryAfter != 3600*time.Second {
		t.Fatalf("RetryAfter = %v", apiErr.RetryAfter)
	}
	if len(*slept) != 1 || (*slept)[0] != 2*time.Second {
		t.Fatalf("slept %v, want one capped 2s wait", *slept)
	}
}

// TestErrorTable: each failure class maps to the right typed error and
// retry decision.
func TestErrorTable(t *testing.T) {
	cases := []struct {
		name      string
		code      int
		body      string
		wantMsg   string
		wantCalls int64 // 1 = not retried
	}{
		{"504 deadline", http.StatusGatewayTimeout, `{"error":"evaluation exceeded the 30s request timeout"}`, "evaluation exceeded", 1},
		{"413 too large", http.StatusRequestEntityTooLarge, `{"error":"request body exceeds 8388608 bytes"}`, "request body exceeds", 1},
		{"400 validation", http.StatusBadRequest, `{"error":"unknown scheme kind"}`, "unknown scheme kind", 1},
		{"503 retried", http.StatusServiceUnavailable, `{"error":"server draining"}`, "server draining", 3},
		{"non-envelope body", http.StatusInternalServerError, `panic elsewhere`, "panic elsewhere", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				calls.Add(1)
				w.WriteHeader(tc.code)
				fmt.Fprint(w, tc.body)
			}))
			defer srv.Close()
			c, _ := fastClient(t, srv.URL, WithRetries(2))
			_, err := c.Eval(context.Background(), EvalRequest{Values: []uint64{1}, Scheme: "gray"})
			var apiErr *APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("err = %v, want *APIError", err)
			}
			if apiErr.StatusCode != tc.code {
				t.Fatalf("status = %d, want %d", apiErr.StatusCode, tc.code)
			}
			if got := apiErr.Message; tc.wantMsg != "" && !contains(got, tc.wantMsg) {
				t.Fatalf("message %q missing %q", got, tc.wantMsg)
			}
			if calls.Load() != tc.wantCalls {
				t.Fatalf("server saw %d calls, want %d", calls.Load(), tc.wantCalls)
			}
		})
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// TestMalformedResponseJSON: a 200 with a torn body is a decode error,
// not a silent zero value.
func TestMalformedResponseJSON(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"scheme":"gray","energy_rem`)
	}))
	defer srv.Close()
	c, _ := fastClient(t, srv.URL)
	_, err := c.Eval(context.Background(), EvalRequest{Values: []uint64{1}, Scheme: "gray"})
	if err == nil || !contains(err.Error(), "decoding") {
		t.Fatalf("err = %v, want decode error", err)
	}
}

// TestConnectionErrorRetries: a refused connection is retried, then
// surfaced as the transport error.
func TestConnectionErrorRetries(t *testing.T) {
	c, slept := fastClient(t, "http://127.0.0.1:1", WithRetries(2), WithBackoff(time.Millisecond, time.Second))
	_, err := c.Eval(context.Background(), EvalRequest{Values: []uint64{1}, Scheme: "gray"})
	if err == nil {
		t.Fatal("dead server produced no error")
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %v, want 2 backoffs", *slept)
	}
	if (*slept)[1] != 2*(*slept)[0] {
		t.Fatalf("backoff not exponential: %v", *slept)
	}
}

// TestWatchJobResumesMidStreamDisconnect: the first SSE connection dies
// abruptly mid-stream; WatchJob reconnects, replays the fresh snapshot,
// and completes with the final job.
func TestWatchJobResumesMidStreamDisconnect(t *testing.T) {
	var conns atomic.Int64
	jobJSON := func(state string) string {
		return fmt.Sprintf(`{"id":"j1","state":%q,"created_at":"2026-08-07T00:00:00Z","items":[],"results":[],"progress":{"total":1,"done":1}}`, state)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/j1/events", func(w http.ResponseWriter, r *http.Request) {
		n := conns.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		rc := http.NewResponseController(w)
		fmt.Fprint(w, "event: state\ndata: {\"type\":\"state\",\"job_id\":\"j1\",\"state\":\"running\",\"progress\":{\"total\":1}}\n\n")
		rc.Flush()
		if n == 1 {
			// Kill the connection without a terminal event.
			panic(http.ErrAbortHandler)
		}
		fmt.Fprint(w, "event: item\ndata: {\"type\":\"item\",\"job_id\":\"j1\",\"state\":\"running\",\"item\":{\"status\":\"done\"},\"progress\":{\"total\":1,\"done\":1}}\n\n")
		fmt.Fprint(w, "event: state\ndata: {\"type\":\"state\",\"job_id\":\"j1\",\"state\":\"done\",\"progress\":{\"total\":1,\"done\":1}}\n\n")
		rc.Flush()
	})
	mux.HandleFunc("GET /v1/jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		state := "running"
		if conns.Load() >= 2 {
			state = "done"
		}
		fmt.Fprint(w, jobJSON(state))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c, _ := fastClient(t, srv.URL)
	var events []Event
	j, err := c.WatchJob(context.Background(), "j1", func(ev Event) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if j.State != JobDone {
		t.Fatalf("final state %q", j.State)
	}
	if conns.Load() != 2 {
		t.Fatalf("connections = %d, want 2 (one dropped, one resumed)", conns.Load())
	}
	// Both connections' snapshots plus the item and terminal events.
	var kinds []string
	for _, ev := range events {
		kinds = append(kinds, ev.Type+":"+string(ev.State))
	}
	want := []string{"state:running", "state:running", "item:running", "state:done"}
	if len(kinds) != len(want) {
		t.Fatalf("events %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events %v, want %v", kinds, want)
		}
	}
}

// TestEventStreamFinalPartialEvent: a feed ending right after a data
// line (no trailing blank line) still delivers the final event before
// reporting closure.
func TestEventStreamFinalPartialEvent(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "event: state\ndata: {\"type\":\"state\",\"job_id\":\"x\",\"state\":\"done\",\"progress\":{}}")
	}))
	defer srv.Close()
	c, _ := fastClient(t, srv.URL)
	stream, err := c.JobEvents(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	ev, err := stream.Next()
	if err != nil || ev.State != JobDone {
		t.Fatalf("ev %+v, err %v", ev, err)
	}
	if _, err := stream.Next(); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("err = %v, want ErrStreamClosed", err)
	}
}
