package buspowersdk

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"buspower/internal/experiments"
	"buspower/internal/serve"
)

// The SDK against the real server, end to end: every public endpoint,
// with responses checked against the engine's direct answers.

func startRealServer(t *testing.T) *Client {
	t.Helper()
	s := serve.NewServer(serve.Options{Workers: 2, QueueDepth: 16, RequestTimeout: 30 * time.Second})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); s.Close() })
	c, err := New(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSDKEvalAgainstEngine(t *testing.T) {
	c := startRealServer(t)
	got, err := c.Eval(context.Background(), EvalRequest{
		Values: []uint64{1, 2, 3, 4, 5, 6, 7, 8, 4, 4, 4, 1, 2, 3},
		Scheme: "window:entries=8",
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := experiments.ParseEvalRequest([]byte(`{"values":[1,2,3,4,5,6,7,8,4,4,4,1,2,3],"scheme":"window:entries=8"}`))
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.EvaluateRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Compare through JSON so the SDK mirror and the internal type meet
	// on the wire shape they share.
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("SDK response diverges from engine:\nsdk:    %s\nengine: %s", gotJSON, wantJSON)
	}

	// EvalRaw returns the server's payload verbatim: the engine's
	// marshalled response plus the trailing newline framing.
	raw, err := c.EvalRaw(context.Background(), []byte(`{"values":[1,2,3,4,5,6,7,8,4,4,4,1,2,3],"scheme":"window:entries=8"}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(wantJSON)+"\n" {
		t.Fatalf("EvalRaw diverges from engine bytes:\nraw:    %q\nengine: %q", raw, wantJSON)
	}
}

func TestSDKDiscoveryAndHealth(t *testing.T) {
	c := startRealServer(t)
	ctx := context.Background()

	schemes, err := c.Schemes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(schemes.Schemes) < 5 || schemes.Grammar == "" {
		t.Fatalf("schemes = %+v", schemes)
	}

	wls, err := c.Workloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(wls) == 0 || wls[0].Name == "" {
		t.Fatalf("workloads = %+v", wls)
	}

	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, err %v", h, err)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil || !strings.Contains(metrics, "buspower_requests_total") {
		t.Fatalf("metrics err %v", err)
	}
}

func TestSDKJobLifecycle(t *testing.T) {
	c := startRealServer(t)
	ctx := context.Background()
	spec := JobSpec{Requests: []EvalRequest{
		{Values: []uint64{1, 2, 3, 1, 2, 3, 9, 9}, Scheme: "gray"},
		{Random: 2000, Scheme: "businvert"},
	}}

	j, created, err := c.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !created || j.ID == "" {
		t.Fatalf("submit: created=%v job=%+v", created, j)
	}

	// Watch to completion through the event stream.
	final, err := c.WatchJob(ctx, j.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone || final.Progress.Done != 2 {
		t.Fatalf("final = %+v", final)
	}
	var resp EvalResponse
	if err := json.Unmarshal(final.Results[0].Result, &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp.Scheme, "gray") {
		t.Fatalf("first result = %+v", resp)
	}

	// Resubmission coalesces onto the done job: full results, no rerun.
	again, created, err := c.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if created || again.ID != j.ID {
		t.Fatalf("resubmit: created=%v id=%s want %s", created, again.ID, j.ID)
	}

	list, err := c.Jobs(ctx)
	if err != nil || len(list) != 1 || list[0].ID != j.ID {
		t.Fatalf("list = %+v, err %v", list, err)
	}

	got, err := c.Job(ctx, j.ID)
	if err != nil || got.State != JobDone {
		t.Fatalf("get = %+v, err %v", got, err)
	}

	// WaitJob on an already-terminal job returns immediately.
	waited, err := c.WaitJob(ctx, j.ID, 10*time.Millisecond)
	if err != nil || waited.State != JobDone {
		t.Fatalf("wait = %+v, err %v", waited, err)
	}
}
