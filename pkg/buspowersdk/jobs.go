package buspowersdk

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// SubmitJob submits a batch for asynchronous evaluation. created is
// false when the submission coalesced onto an existing job with the
// same content address (for a finished job, that job already carries
// the complete results).
func (c *Client) SubmitJob(ctx context.Context, spec JobSpec) (job *Job, created bool, err error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, false, err
	}
	var out Job
	resp, err := c.doJSON(ctx, http.MethodPost, "/v1/jobs", body, &out)
	if err != nil {
		return nil, false, err
	}
	return &out, resp.StatusCode == http.StatusAccepted, nil
}

// Job fetches one job with its full per-item results.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var out Job
	if _, err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Jobs lists all resident jobs in submission order.
func (c *Client) Jobs(ctx context.Context) ([]JobSummary, error) {
	var out struct {
		Jobs []JobSummary `json:"jobs"`
	}
	if _, err := c.doJSON(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// CancelJob requests cooperative cancellation and returns the job's
// state after the request.
func (c *Client) CancelJob(ctx context.Context, id string) (*Job, error) {
	var out Job
	if _, err := c.doJSON(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob blocks until the job reaches a terminal state, polling at the
// given interval (default 500ms when <= 0), and returns the final job.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*Job, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		if err := c.sleep(ctx, poll); err != nil {
			return nil, err
		}
	}
}

// EventStream is one live SSE connection to a job's event feed.
type EventStream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
}

// ErrStreamClosed reports an SSE stream that ended cleanly (the job
// reached a terminal state and the server closed the feed).
var ErrStreamClosed = errors.New("buspowersdk: event stream closed")

// JobEvents opens the job's SSE feed. The first event is always a
// "state" snapshot of where the job currently stands; the caller owns
// the stream and must Close it.
func (c *Client) JobEvents(ctx context.Context, id string) (*EventStream, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/events", nil, "")
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return &EventStream{body: resp.Body, sc: sc}, nil
}

// Next blocks for the next event. It returns ErrStreamClosed when the
// server ended the feed, or the transport error when the connection
// died mid-stream (see WatchJob for transparent resumption).
func (s *EventStream) Next() (Event, error) {
	var data strings.Builder
	sawData := false
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case line == "":
			if sawData {
				var ev Event
				if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
					return Event{}, fmt.Errorf("buspowersdk: bad event payload: %w", err)
				}
				return ev, nil
			}
		case strings.HasPrefix(line, "data: "):
			data.WriteString(strings.TrimPrefix(line, "data: "))
			sawData = true
		}
		// "event:" lines are redundant with the payload's type field.
	}
	if err := s.sc.Err(); err != nil {
		return Event{}, err
	}
	if sawData {
		// A final event not yet terminated by a blank line when the feed
		// ended; deliver it before reporting closure.
		var ev Event
		if err := json.Unmarshal([]byte(data.String()), &ev); err == nil {
			sawData = false
			return ev, nil
		}
	}
	return Event{}, ErrStreamClosed
}

// Close releases the stream's connection.
func (s *EventStream) Close() error { return s.body.Close() }

// WatchJob follows a job to completion through its event feed, calling
// onEvent (when non-nil) for every received event. A connection that
// dies mid-stream is transparently resumed: each reconnect opens with a
// fresh state snapshot, so no job-state transition is ever missed
// (individual item events from the gap are summarized by the snapshot's
// progress counts rather than replayed). Returns the final job record.
func (c *Client) WatchJob(ctx context.Context, id string, onEvent func(Event)) (*Job, error) {
	for {
		stream, err := c.JobEvents(ctx, id)
		if err != nil {
			return nil, err
		}
		closed := false
		for {
			ev, err := stream.Next()
			if errors.Is(err, ErrStreamClosed) {
				closed = true
				break
			}
			if err != nil {
				break // mid-stream disconnect: reconnect below
			}
			if onEvent != nil {
				onEvent(ev)
			}
			if ev.Type == "state" && ev.State.Terminal() {
				closed = true
				break
			}
		}
		stream.Close()
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Whether the feed ended cleanly or died, the job record is the
		// authority; a terminal state ends the watch.
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		if closed {
			// The server ended the feed for a non-terminal job (e.g. a
			// drain); brief pause before re-subscribing.
			if err := c.sleep(ctx, c.backoff); err != nil {
				return nil, err
			}
		}
	}
}
