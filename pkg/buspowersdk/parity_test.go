package buspowersdk

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"buspower/internal/experiments"
	"buspower/internal/jobs"
)

// The SDK mirrors the server's internal wire types field-for-field.
// Each parity test marshals a fully populated internal value, decodes
// it into the mirror with unknown fields disallowed (a field the SDK
// dropped fails here), and re-marshals (a field the SDK added, renamed
// or re-tagged fails the byte comparison).

func roundTripParity(t *testing.T, internal interface{}, mirror interface{}) {
	t.Helper()
	data, err := json.Marshal(internal)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(mirror); err != nil {
		t.Fatalf("SDK mirror rejects server payload: %v\npayload: %s", err, data)
	}
	back, err := json.Marshal(mirror)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatalf("SDK mirror re-marshals differently:\nserver: %s\nsdk:    %s", data, back)
	}
}

func internalEvalRequest() experiments.EvalRequest {
	return experiments.EvalRequest{
		Workload:        "li",
		Bus:             "reg",
		Random:          25000,
		Values:          []uint64{1, 2, 3},
		Scheme:          "window:entries=8",
		Lambda:          2.5,
		Verify:          "sampled:512",
		Quick:           true,
		MaxInstructions: 1_000_000,
		MaxBusValues:    120_000,
	}
}

func TestEvalRequestParity(t *testing.T) {
	roundTripParity(t, internalEvalRequest(), &EvalRequest{})
}

func TestEvalResponseParity(t *testing.T) {
	req, err := experiments.ParseEvalRequest([]byte(`{"values":[1,2,3,7,1,2],"scheme":"window:entries=8","lambda":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := experiments.EvaluateRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	roundTripParity(t, resp, &EvalResponse{})
}

func TestJobParity(t *testing.T) {
	now := time.Now().UTC().Truncate(time.Second)
	later := now.Add(3 * time.Second)
	req := internalEvalRequest()
	j := jobs.Job{
		ID:         "0123456789abcdef0123456789abcdef",
		State:      jobs.StateFailed,
		CreatedAt:  now,
		StartedAt:  &now,
		FinishedAt: &later,
		Items: []jobs.Item{
			{Kind: "eval", Eval: &req},
			{Kind: "experiment", Experiment: "fig9", Quick: true},
		},
		Results: []jobs.ItemResult{
			{Status: jobs.ItemDone, Result: json.RawMessage(`{"x":1}`), ElapsedMS: 12.5},
			{Status: "failed", Error: "boom", ElapsedMS: 1},
		},
		Progress: jobs.Progress{Total: 2, Pending: 0, Running: 0, Done: 1, Failed: 1, Cancelled: 0},
	}
	roundTripParity(t, j, &Job{})
}

func TestEventParity(t *testing.T) {
	ev := jobs.Event{
		Type:  "item",
		JobID: "deadbeef",
		State: jobs.StateRunning,
		Index: 3,
		Item: &jobs.ItemResult{
			Status: jobs.ItemDone, Result: json.RawMessage(`{"y":2}`), ElapsedMS: 4,
		},
		Progress: jobs.Progress{Total: 5, Pending: 1, Running: 1, Done: 3},
	}
	roundTripParity(t, ev, &Event{})
}

// TestJobSpecAccepted: what the SDK submits must parse through the
// server's own spec parser.
func TestJobSpecAccepted(t *testing.T) {
	spec := JobSpec{Requests: []EvalRequest{
		{Values: []uint64{1, 2, 3}, Scheme: "gray"},
		{Random: 500, Scheme: "businvert", Lambda: 2},
	}}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	items, err := jobs.ParseSpec(data)
	if err != nil {
		t.Fatalf("server spec parser rejects SDK submission: %v", err)
	}
	if len(items) != 2 || items[0].Kind != "eval" {
		t.Fatalf("items = %+v", items)
	}

	suite := JobSpec{Suite: &SuiteSpec{Experiments: "all", Quick: true}}
	data, err = json.Marshal(suite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jobs.ParseSpec(data); err != nil {
		t.Fatalf("server spec parser rejects SDK suite submission: %v", err)
	}
}
