package buspowersdk

import (
	"encoding/json"
	"time"
)

// The SDK defines its own wire types rather than re-exporting the
// server's internal ones: internal/ packages are unimportable outside
// this module, and the JSON shapes — not the Go identifiers — are the
// API contract. Parity tests in this package round-trip every mirror
// against its internal counterpart, so a drifting field breaks the
// build, not a user.

// EvalRequest is the POST /v1/eval payload. Exactly one source must be
// set: Workload+Bus, Random, or Values.
type EvalRequest struct {
	// Workload names a registered benchmark; Bus selects its captured
	// stream: "reg", "mem" or "addr".
	Workload string `json:"workload,omitempty"`
	Bus      string `json:"bus,omitempty"`
	// Random asks for the shared uniformly random trace of this length.
	Random int `json:"random,omitempty"`
	// Values is an inline submitted trace.
	Values []uint64 `json:"values,omitempty"`
	// Scheme is the coding-scheme spec, e.g. "window:entries=8" or
	// "context:table=64,sr=8".
	Scheme string `json:"scheme"`
	// Lambda is the coupling ratio Λ the meters are read at (default 1).
	Lambda float64 `json:"lambda,omitempty"`
	// Verify is the decoder round-trip policy: "full", "sampled[:N]" or
	// "off".
	Verify string `json:"verify,omitempty"`
	// Quick selects reduced workload simulation bounds; the Max fields
	// override individual bounds.
	Quick           bool   `json:"quick,omitempty"`
	MaxInstructions uint64 `json:"max_instructions,omitempty"`
	MaxBusValues    int    `json:"max_bus_values,omitempty"`
}

// BusStats is one bus's activity accounting.
type BusStats struct {
	Width        int     `json:"width"`
	Cycles       uint64  `json:"cycles"`
	Transitions  uint64  `json:"transitions"`
	Couplings    uint64  `json:"couplings"`
	Cost         float64 `json:"cost"`
	CostPerCycle float64 `json:"cost_per_cycle"`
}

// OpStats counts the encoder's hardware operations (§5.3.2 of the
// paper). Field names are the wire names — the server's type carries no
// JSON tags.
type OpStats struct {
	Cycles            uint64
	PartialMatches    uint64
	FullMatches       uint64
	Shifts            uint64
	CounterIncrements uint64
	CounterCompares   uint64
	Swaps             uint64
	TableWrites       uint64
	CodeSends         uint64
	RawSends          uint64
	LastHits          uint64
}

// EvalResponse is the POST /v1/eval result.
type EvalResponse struct {
	Scheme             string   `json:"scheme"`
	ConfigKey          string   `json:"config_key"`
	Source             string   `json:"source"`
	Lambda             float64  `json:"lambda"`
	Verify             string   `json:"verify"`
	Raw                BusStats `json:"raw"`
	Coded              BusStats `json:"coded"`
	EnergyRemovedPct   float64  `json:"energy_removed_pct"`
	EnergyRemainingPct float64  `json:"energy_remaining_pct"`
	Ops                OpStats  `json:"ops"`
}

// SchemeInfo describes one accepted scheme kind (GET /v1/schemes).
type SchemeInfo struct {
	Kind    string `json:"kind"`
	Example string `json:"example"`
}

// SchemesResponse is the GET /v1/schemes payload.
type SchemesResponse struct {
	Schemes []SchemeInfo `json:"schemes"`
	Grammar string       `json:"grammar"`
}

// WorkloadInfo describes one registered workload (GET /v1/workloads).
type WorkloadInfo struct {
	Name        string   `json:"name"`
	Suite       string   `json:"suite"`
	Description string   `json:"description"`
	Buses       []string `json:"buses"`
}

// JobState is a job's lifecycle state.
type JobState string

const (
	JobPending   JobState = "pending"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// ItemStatus is one job item's lifecycle state.
type ItemStatus string

// JobSpec is the POST /v1/jobs payload: either a batch of eval
// requests, or a registered experiment suite.
type JobSpec struct {
	// Requests is a batch of eval requests (same shape as /v1/eval).
	Requests []EvalRequest `json:"requests,omitempty"`
	// Suite selects registered experiments by id.
	Suite *SuiteSpec `json:"suite,omitempty"`
}

// SuiteSpec selects registered experiments.
type SuiteSpec struct {
	// Experiments is a comma-separated id list; "all" expands to every
	// registered experiment.
	Experiments string `json:"experiments"`
	// Quick selects the reduced simulation bounds.
	Quick bool `json:"quick,omitempty"`
}

// JobItem is one unit of scheduled work inside a job.
type JobItem struct {
	Kind       string       `json:"kind"` // "eval" or "experiment"
	Eval       *EvalRequest `json:"eval,omitempty"`
	Experiment string       `json:"experiment,omitempty"`
	Quick      bool         `json:"quick,omitempty"`
}

// ItemResult is one item's outcome. Result holds the item's JSON
// payload: an EvalResponse for "eval" items, an experiment result for
// "experiment" items.
type ItemResult struct {
	Status    ItemStatus      `json:"status"`
	Result    json.RawMessage `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
	ElapsedMS float64         `json:"elapsed_ms,omitempty"`
}

// Progress is a job's item census.
type Progress struct {
	Total     int `json:"total"`
	Pending   int `json:"pending"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// Job is the full job record (GET /v1/jobs/{id}).
type Job struct {
	ID         string       `json:"id"`
	State      JobState     `json:"state"`
	CreatedAt  time.Time    `json:"created_at"`
	StartedAt  *time.Time   `json:"started_at,omitempty"`
	FinishedAt *time.Time   `json:"finished_at,omitempty"`
	Items      []JobItem    `json:"items"`
	Results    []ItemResult `json:"results"`
	Progress   Progress     `json:"progress"`
}

// JobSummary is the list view (GET /v1/jobs).
type JobSummary struct {
	ID         string     `json:"id"`
	State      JobState   `json:"state"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	Progress   Progress   `json:"progress"`
}

// Event is one GET /v1/jobs/{id}/events stream entry.
type Event struct {
	// Type is "state" or "item".
	Type  string   `json:"type"`
	JobID string   `json:"job_id"`
	State JobState `json:"state"`
	// Index and Item carry the item outcome ("item" events).
	Index int         `json:"index,omitempty"`
	Item  *ItemResult `json:"item,omitempty"`
	// Progress is the job's counts after the event.
	Progress Progress `json:"progress"`
}

// Health is the GET /healthz payload.
type Health struct {
	Status string `json:"status"`
}
